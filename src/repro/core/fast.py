"""Array-backed fast backend: vectorised kernels for large instances.

The scalar implementations in :mod:`repro.core.satisfaction`,
:mod:`repro.core.weights` and :mod:`repro.core.lic` are the readable
reference; profiling (HPC-guide workflow: make it work → make it right →
measure) shows the per-edge Python loops dominate beyond a few thousand
nodes.  This module lowers a :class:`PreferenceSystem` to contiguous
NumPy arrays **once** (:class:`FastInstance`) and runs the whole hot
path on them:

- :class:`FastInstance` — edge-indexed arrays ``(i, j, R_i(j), R_j(i),
  w)`` plus node arrays ``(ℓ, b)``, built with vectorised rank recovery
  (one stable argsort over undirected-edge codes pairs each directed
  edge with its reverse, no per-edge dict lookups),
- :func:`lic_matching_fast` — Algorithm 2 via argsort over the
  total-order keys plus residual-quota counters.  Batched
  within-quota-rank rounds do the bulk of the selection vectorised; a
  sequential scan finishes any adversarial tail, so the result is
  *always* the exact LIC edge set (confluence, Lemmas 4/6),
- :func:`edge_weight_arrays` / :func:`satisfaction_weights_fast` —
  eq.-9 weights for all edges in one vectorised pass,
- :func:`satisfaction_profile_fast` — per-node eq.-1 / eq.-6
  satisfaction for a whole matching via ``np.add.at`` scatter sums.

Every kernel is differentially tested against its scalar reference
(``tests/core/test_fast.py``) and benchmarked in
``bench_p1_vectorised_kernels.py`` / ``bench_p3_fast_backend.py``.
The weight arithmetic mirrors :func:`repro.core.satisfaction.delta_static`
operation for operation, so weights — and therefore the greedy total
order and the selected edge set — are bit-identical to the reference,
not merely close.  See ``docs/performance.md``.
"""

from __future__ import annotations

from itertools import chain
from typing import Sequence

import numpy as np

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable

__all__ = [
    "FastInstance",
    "lic_matching_fast",
    "edge_weight_arrays",
    "satisfaction_weights_fast",
    "satisfaction_profile_fast",
]


class FastInstance:
    """A preference system (or weighted instance) lowered to flat arrays.

    Invariant: the edge arrays are in canonical ascending ``(i, j)``
    order — the :meth:`PreferenceSystem.edges` order — which lets
    :meth:`sorted_order` realise the total-order tie-break with a single
    stable argsort over the weights.

    Attributes
    ----------
    n, m:
        Node and edge counts.
    i, j:
        ``int64[m]`` canonical edge endpoints (``i < j``), in the same
        order as :meth:`PreferenceSystem.edges`.
    w:
        ``float64[m]`` positive edge weights (eq. 9 for instances built
        from a :class:`PreferenceSystem`).
    quota:
        ``int64[n]`` connection quotas ``b_i``.
    ri, rj:
        ``float64[m]`` ranks ``R_i(j)`` / ``R_j(i)`` (``None`` when the
        instance was built from a bare :class:`WeightTable`).
    ell:
        ``float64[n]`` clamped list lengths ``max(ℓ_i, 1)`` (``None``
        for bare weight tables).
    """

    __slots__ = ("n", "m", "i", "j", "w", "quota", "ri", "rj", "ell", "_order", "_wt")

    def __init__(
        self,
        n: int,
        i: np.ndarray,
        j: np.ndarray,
        w: np.ndarray,
        quota: np.ndarray,
        ri: np.ndarray | None = None,
        rj: np.ndarray | None = None,
        ell: np.ndarray | None = None,
    ):
        self.n = int(n)
        self.m = len(w)
        self.i = i
        self.j = j
        self.w = w
        self.quota = quota
        self.ri = ri
        self.rj = rj
        self.ell = ell
        self._order: np.ndarray | None = None
        self._wt: WeightTable | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_preference_system(cls, ps: PreferenceSystem) -> "FastInstance":
        """Lower a preference system: one vectorised pass, eq.-9 weights.

        Rank recovery avoids per-edge dict lookups.  Each directed edge
        ``u → v`` is encoded as the *undirected* code
        ``min(u,v) * n + max(u,v)``; one stable argsort then places the
        two directions of every edge adjacently (i-side first, because
        the directed list is ordered by owner), in canonical ascending
        ``(i, j)`` order.  Ranks ``R_i(j)`` / ``R_j(i)`` fall out of the
        within-list positions of the two paired entries — no
        searchsorted, no second sort.
        """
        n = ps.n
        rankings = [ps.preference_list(v) for v in range(n)]
        degs = np.fromiter(map(len, rankings), dtype=np.int64, count=n)
        total = int(degs.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return cls(
                n,
                e,
                e,
                np.empty(0, dtype=np.float64),
                np.asarray(ps.quotas, dtype=np.int64),
                ri=np.empty(0, dtype=np.float64),
                rj=np.empty(0, dtype=np.float64),
                ell=np.maximum(degs, 1).astype(np.float64),
            )
        nbr = np.fromiter(chain.from_iterable(rankings), dtype=np.int64, count=total)
        own = np.repeat(np.arange(n, dtype=np.int64), degs)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(degs[:-1], out=starts[1:])
        pos = np.arange(total, dtype=np.int64) - np.repeat(starts, degs)

        mn = np.minimum(own, nbr)
        mx = np.maximum(own, nbr)
        # appending the direction bit makes the codes unique, so the
        # (much faster) non-stable quicksort gives the same permutation
        # a stable sort of the bare codes would; int32 keys when they fit
        code_dtype = np.int32 if 2 * n * n < 2**31 else np.int64
        und = (mn.astype(code_dtype) * code_dtype(n) + mx.astype(code_dtype)) * 2
        und += own > nbr
        srt = np.argsort(und)
        a = srt[0::2]  # i-side directed edge of each pair (owner < neighbour)
        b_side = srt[1::2]  # j-side (the reverse direction)
        i = own[a]
        j = nbr[a]
        ri = pos[a].astype(np.float64)
        rj = pos[b_side].astype(np.float64)

        ell = np.maximum(degs, 1).astype(np.float64)
        quota = np.asarray(ps.quotas, dtype=np.int64)
        b = np.maximum(quota, 1).astype(np.float64)
        # mirrors delta_static(ps, i, j) + delta_static(ps, j, i) op for op,
        # so the floats are bit-identical to the scalar reference
        w = (1.0 - ri / ell[i]) / b[i] + (1.0 - rj / ell[j]) / b[j]
        return cls(n, i, j, w, quota, ri=ri, rj=rj, ell=ell)

    @classmethod
    def from_weight_table(
        cls, wt: WeightTable, quotas: Sequence[int]
    ) -> "FastInstance":
        """Lower an arbitrary positive-weight table (Theorem 2 inputs)."""
        if len(quotas) != wt.n:
            raise ValueError(f"quotas length {len(quotas)} != n={wt.n}")
        m = wt.m
        i = np.empty(m, dtype=np.int64)
        j = np.empty(m, dtype=np.int64)
        w = np.empty(m, dtype=np.float64)
        for k, ((a, b), wk) in enumerate(wt.items()):
            i[k] = a
            j[k] = b
            w[k] = wk
        # restore the canonical ascending (i, j) invariant — weight
        # tables built from arbitrary triples carry insertion order
        canon = np.lexsort((j, i))
        quota = np.asarray([int(q) for q in quotas], dtype=np.int64)
        return cls(wt.n, i[canon], j[canon], w[canon], quota)

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------

    def sorted_order(self) -> np.ndarray:
        """Edge indices by strictly decreasing total-order key ``(w, i, j)``.

        Identical ordering to :meth:`WeightTable.sorted_edges`: because
        the edge arrays hold canonical ascending ``(i, j)`` order, a
        *stable* ascending argsort of ``w`` keeps equal-weight edges in
        ascending ``(i, j)``; reversing the whole permutation yields
        descending ``(w, i, j)`` — the exact reference scan order.
        """
        if self._order is None:
            self._order = np.argsort(self.w, kind="stable")[::-1]
        return self._order

    def weight_table(self) -> WeightTable:
        """The equivalent :class:`WeightTable` (cached; dict-backed API)."""
        if self._wt is None:
            weights = dict(
                zip(zip(self.i.tolist(), self.j.tolist()), self.w.tolist())
            )
            self._wt = WeightTable.from_trusted(weights, self.n)
        return self._wt

    def __repr__(self) -> str:
        return f"FastInstance(n={self.n}, m={self.m})"


def _coerce_instance(
    src: "FastInstance | PreferenceSystem | WeightTable",
    quotas: Sequence[int] | None,
) -> FastInstance:
    if isinstance(src, FastInstance):
        return src
    if isinstance(src, PreferenceSystem):
        return FastInstance.from_preference_system(src)
    if isinstance(src, WeightTable):
        if quotas is None:
            raise ValueError("quotas are required when passing a WeightTable")
        return FastInstance.from_weight_table(src, quotas)
    raise TypeError(f"cannot lower {type(src).__name__} to a FastInstance")


def lic_matching_fast(
    src: "FastInstance | PreferenceSystem | WeightTable",
    quotas: Sequence[int] | None = None,
    *,
    max_rounds: int = 64,
    tail_threshold: int = 2048,
) -> Matching:
    """Array-backed LIC: the exact :func:`repro.core.lic.lic_matching` edge set.

    The total order is materialised once with a stable argsort over the
    weights (:meth:`FastInstance.sorted_order`); selection then runs
    *batched within-quota-rank rounds*.  Let ``rank_v(e)`` be the
    0-based position of pool edge ``e`` among the pool edges at node
    ``v`` in scan order.  A round simultaneously selects every edge with
    ``rank_i(e) < residual[i]`` and ``rank_j(e) < residual[j]``.

    Each such edge is provably selected by the sequential scan on the
    current pool: when the scan reaches ``e``, at most ``rank_v(e)``
    higher-priority pool edges at ``v`` can have been selected, so
    ``v`` retains capacity.  Conversely the leftover pool re-scanned
    with the decremented residuals yields exactly the remaining
    scan-selected edges — any batch edge below ``e`` at ``v`` has
    ``rank > rank_v(e)``, so it never starves an edge the scan would
    have taken.  Iterating therefore reproduces the reference edge set
    exactly (and confluence — Lemmas 4/6 — makes that *the* LIC output).

    Random instances finish in O(log m) rounds; a strictly decreasing
    weight chain could need Θ(m), so after ``max_rounds`` — or as soon
    as the pool is small — the surviving pool (with its residual
    counters) is handed to the plain sequential scan, keeping the worst
    case O(m log m) like the reference.

    Parameters
    ----------
    src:
        A :class:`FastInstance` (preferred — lower once, solve many), a
        :class:`PreferenceSystem` (lowered on the fly), or a
        :class:`WeightTable` (requires ``quotas``).
    quotas:
        Residual capacities for the scan; defaults to the source's own
        quotas.  Required with a :class:`WeightTable` source.  An
        override does not change the eq.-9 weights — it mirrors calling
        the reference ``lic_matching(wt, quotas)`` with the same table.
    max_rounds:
        Batched rounds before falling back to the sequential scan;
        ``0`` forces the pure sequential path (used in tests).
    tail_threshold:
        Pool size below which the remaining edges go straight to the
        sequential scan (vectorisation overhead beats Python below it).
    """
    fi = _coerce_instance(src, quotas)
    n, m = fi.n, fi.m
    if m == 0:
        return Matching(n)
    i, j = fi.i, fi.j
    order = fi.sorted_order()

    if quotas is None:
        residual = fi.quota.copy()
    else:
        residual = np.asarray(quotas, dtype=fi.quota.dtype).copy()
        if residual.shape != (n,):
            raise ValueError(f"quotas must have length {n}, got {residual.shape}")
    selected = np.zeros(m, dtype=bool)
    # pool = edges whose endpoints both retain capacity (isolated-node
    # safety), kept in scan order throughout: it starts as a filter of
    # `order` and every later update is an order-preserving boolean
    # filter.  Endpoint columns are carried across rounds (int32: the
    # per-round stable sort is radix and twice as fast on 4-byte keys).
    pool = order[(residual[i[order]] > 0) & (residual[j[order]] > 0)]
    pi = i[pool].astype(np.int32)
    pj = j[pool].astype(np.int32)
    p = len(pool)

    g_node: np.ndarray | None = None
    g_edge: np.ndarray | None = None
    if max_rounds > 0 and p >= tail_threshold:
        # group the 2p (edge, endpoint) slots by node ONCE: interleaving
        # the endpoint columns keeps each node's occurrences in scan
        # order, and appending the slot index makes the sort key unique,
        # so non-stable quicksort (≈4x faster than kind="stable") yields
        # the grouped order.  Rounds below only *filter* these arrays —
        # within-group ranks are recomputed with O(p) bincount/cumsum,
        # never by re-sorting.
        nodes2 = np.empty(2 * p, dtype=np.int32)
        nodes2[0::2] = pi
        nodes2[1::2] = pj
        key = nodes2.astype(np.int64) * (2 * p) + np.arange(2 * p, dtype=np.int64)
        srt = np.argsort(key)
        g_node = nodes2[srt]
        g_edge = (srt >> 1).astype(np.int32)  # slot -> index into pool arrays

    for _ in range(max_rounds):
        if p < tail_threshold:
            break
        counts = np.bincount(g_node, minlength=n)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        # rank_v(e): 0-based position of the slot within its node group
        within = np.arange(len(g_node), dtype=np.int64) - starts[g_node]
        cond = within < residual[g_node]
        # an edge is selected when BOTH its endpoint slots pass
        sel = np.bincount(g_edge[cond], minlength=p) == 2
        selected[pool[sel]] = True
        # a node may gain several edges per round — aggregate with bincount
        residual -= np.bincount(pi[sel], minlength=n)
        residual -= np.bincount(pj[sel], minlength=n)
        keep = ~sel
        keep &= (residual[pi] > 0) & (residual[pj] > 0)
        # compact the pool and remap the grouped slots to the new indices
        newidx = np.cumsum(keep, dtype=np.int64) - 1
        gk = keep[g_edge]
        g_edge = newidx[g_edge[gk]].astype(np.int32)
        g_node = g_node[gk]
        pool, pi, pj = pool[keep], pi[keep], pj[keep]
        p = len(pool)

    if len(pool):
        # small or adversarial tail: finish with the sequential
        # residual-quota scan (pool is already in scan order)
        res = residual.tolist()
        for k, a, b in zip(pool.tolist(), pi.tolist(), pj.tolist()):
            if res[a] > 0 and res[b] > 0:
                selected[k] = True
                res[a] -= 1
                res[b] -= 1

    return Matching.from_trusted_arrays(n, i[selected], j[selected])


def _instance_arrays(ps: PreferenceSystem):
    """Edge-indexed arrays (i, j, R_i(j), R_j(i)) and node arrays (ℓ, b)."""
    fi = FastInstance.from_preference_system(ps)
    b = np.maximum(fi.quota, 1).astype(np.float64)
    return fi.i, fi.j, fi.ri, fi.rj, fi.ell, b


def edge_weight_arrays(ps: PreferenceSystem):
    """Vectorised eq.-9 weights.

    Returns ``(i, j, w)`` arrays over the canonical edge list of ``ps``
    (``i < j``).  ``w[k] = (1 - R_i(j)/ℓ_i)/b_i + (1 - R_j(i)/ℓ_j)/b_j``.
    """
    fi = FastInstance.from_preference_system(ps)
    return fi.i, fi.j, fi.w


def satisfaction_weights_fast(ps: PreferenceSystem) -> WeightTable:
    """Drop-in replacement for :func:`repro.core.weights.satisfaction_weights`.

    Identical output table; the weight computation is vectorised (the
    residual cost is the dict the :class:`WeightTable` API requires).
    """
    return FastInstance.from_preference_system(ps).weight_table()


def satisfaction_profile_fast(
    ps: PreferenceSystem, matching: Matching, kind: str = "full"
) -> np.ndarray:
    """Vectorised per-node satisfaction of a matching.

    Equivalent to :meth:`Matching.satisfaction_vector`; scatter-adds the
    matched-edge rank contributions with ``np.add.at`` instead of
    iterating per node.
    """
    if kind not in ("full", "static"):
        raise ValueError(f"kind must be 'full' or 'static', got {kind!r}")
    n = ps.n
    counts = np.zeros(n, dtype=np.float64)
    rank_sums = np.zeros(n, dtype=np.float64)
    edges = matching.edges()
    if edges:
        i_arr = np.empty(len(edges), dtype=np.int64)
        j_arr = np.empty(len(edges), dtype=np.int64)
        ri = np.empty(len(edges), dtype=np.float64)
        rj = np.empty(len(edges), dtype=np.float64)
        for k, (i, j) in enumerate(edges):
            i_arr[k] = i
            j_arr[k] = j
            ri[k] = ps.rank(i, j)
            rj[k] = ps.rank(j, i)
        np.add.at(counts, i_arr, 1.0)
        np.add.at(counts, j_arr, 1.0)
        np.add.at(rank_sums, i_arr, ri)
        np.add.at(rank_sums, j_arr, rj)
    ell = np.array([max(ps.list_length(v), 1) for v in ps.nodes()], dtype=np.float64)
    b_true = np.array([ps.quota(v) for v in ps.nodes()], dtype=np.float64)
    b = np.maximum(b_true, 1.0)
    out = counts / b - rank_sums / (b * ell)
    if kind == "full":
        out = out + counts * (counts - 1.0) / (2.0 * b * ell)
    # isolated nodes (quota 0) score 0 by definition
    out[b_true == 0] = 0.0
    return out
