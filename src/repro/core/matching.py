"""Many-to-many matchings (b-matchings) and their accounting.

A *b-matching* is a subset ``M ⊆ E`` of potential-connection edges such
that every node ``i`` is an endpoint of at most ``b_i`` edges of ``M``.
:class:`Matching` stores such a subset as per-node connection sets,
supports incremental mutation (used by the best-response baselines and
the churn machinery) and provides the satisfaction / weight accounting
used throughout the experiments.
"""

from __future__ import annotations

from itertools import islice, repeat
from typing import Iterable, Iterator

import numpy as np

from repro.core.preferences import PreferenceSystem
from repro.core.satisfaction import (
    connection_list,
    satisfaction_vector,
    total_satisfaction,
)
from repro.core.weights import WeightTable
from repro.utils.validation import InvalidMatchingError

__all__ = ["Matching"]

Edge = tuple[int, int]


def _canon(i: int, j: int) -> Edge:
    return (i, j) if i < j else (j, i)


class Matching:
    """A mutable many-to-many matching over ``n`` nodes.

    The object enforces only *structural* sanity (no self-loops, no
    duplicate edges, endpoints in range); quota and edge-existence
    feasibility against a concrete :class:`PreferenceSystem` is checked by
    :meth:`validate`, so that the same class can hold intermediate states
    of iterative algorithms.
    """

    __slots__ = ("_n", "_conn")

    def __init__(self, n: int, edges: Iterable[Edge] = ()):
        if n <= 0:
            raise InvalidMatchingError(f"n must be positive, got {n}")
        self._n = n
        self._conn: list[set[int]] = [set() for _ in range(n)]
        for i, j in edges:
            self.add(i, j)

    @classmethod
    def from_trusted_arrays(cls, n: int, i_arr, j_arr) -> "Matching":
        """Bulk-build from parallel endpoint arrays, skipping per-edge checks.

        The fast backend's greedy selection emits canonical, duplicate-free,
        in-range edges by construction; re-validating each one through
        :meth:`add` is pure overhead on the hot path.  Callers must
        guarantee those invariants.  Connection sets are materialised by
        sorting the directed edge list once and slicing per node
        (``__new__`` sidesteps ``__init__``'s throwaway empty sets).
        """
        if n <= 0:
            raise InvalidMatchingError(f"n must be positive, got {n}")
        out = cls.__new__(cls)
        out._n = n
        if len(i_arr) == 0:
            out._conn = [set() for _ in range(n)]
            return out
        nodes = np.concatenate((i_arr, j_arr))
        partners = np.concatenate((j_arr, i_arr))
        srt = np.argsort(nodes)
        partners_sorted = iter(partners[srt].tolist())
        counts = np.bincount(nodes, minlength=n).tolist()
        out._conn = list(map(set, map(islice, repeat(partners_sorted), counts)))
        return out

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, i: int, j: int) -> None:
        """Add edge ``(i, j)``; raises if present or malformed."""
        if i == j:
            raise InvalidMatchingError(f"self-loop ({i},{j})")
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise InvalidMatchingError(f"edge ({i},{j}) outside 0..{self._n - 1}")
        if j in self._conn[i]:
            raise InvalidMatchingError(f"edge ({i},{j}) already in matching")
        self._conn[i].add(j)
        self._conn[j].add(i)

    def remove(self, i: int, j: int) -> None:
        """Remove edge ``(i, j)``; raises if absent."""
        if j not in self._conn[i]:
            raise InvalidMatchingError(f"edge ({i},{j}) not in matching")
        self._conn[i].discard(j)
        self._conn[j].discard(i)

    def discard(self, i: int, j: int) -> bool:
        """Remove edge ``(i, j)`` if present; returns whether it was."""
        if j in self._conn[i]:
            self.remove(i, j)
            return True
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes the matching is defined over."""
        return self._n

    def has_edge(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` is matched."""
        return 0 <= i < self._n and j in self._conn[i]

    def connections(self, i: int) -> frozenset[int]:
        """The matched neighbours of node ``i`` (the unordered ``C_i``)."""
        return frozenset(self._conn[i])

    def connection_list(self, ps: PreferenceSystem, i: int) -> list[int]:
        """``C_i`` ordered by decreasing preference (index = ``Q_i``)."""
        return connection_list(ps, i, self._conn[i])

    def degree(self, i: int) -> int:
        """Number of matched connections ``c_i`` of node ``i``."""
        return len(self._conn[i])

    def size(self) -> int:
        """Number of matched edges ``|M|``."""
        return sum(len(s) for s in self._conn) // 2

    def edges(self) -> list[Edge]:
        """Matched edges, canonical ``(i, j)`` with ``i < j``, sorted."""
        return sorted(
            (i, j) for i in range(self._n) for j in self._conn[i] if i < j
        )

    def edge_set(self) -> frozenset[Edge]:
        """Matched edges as a frozenset of canonical pairs."""
        return frozenset(
            (i, j) for i in range(self._n) for j in self._conn[i] if i < j
        )

    def adjacency(self) -> list[frozenset[int]]:
        """Connection sets for all nodes (for satisfaction helpers)."""
        return [frozenset(s) for s in self._conn]

    def copy(self) -> "Matching":
        """Deep copy."""
        out = Matching(self._n)
        out._conn = [set(s) for s in self._conn]
        return out

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def total_weight(self, wt: WeightTable) -> float:
        """Sum of edge weights ``w(M)``."""
        return wt.total_weight(self.edges())

    def satisfaction_vector(self, ps: PreferenceSystem, kind: str = "full"):
        """Per-node satisfaction under eq. 1 (``full``) or eq. 6 (``static``)."""
        return satisfaction_vector(ps, self.adjacency(), kind)

    def total_satisfaction(self, ps: PreferenceSystem, kind: str = "full") -> float:
        """Network-wide satisfaction ``Σ_i S_i``."""
        return total_satisfaction(ps, self.adjacency(), kind)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self, ps: PreferenceSystem) -> None:
        """Raise :class:`InvalidMatchingError` unless feasible for ``ps``.

        Checks (a) every matched edge is a potential connection in ``E``
        and (b) every node respects its quota ``b_i``.
        """
        if ps.n != self._n:
            raise InvalidMatchingError(
                f"matching over {self._n} nodes, instance has {ps.n}"
            )
        for i in range(self._n):
            if len(self._conn[i]) > ps.quota(i):
                raise InvalidMatchingError(
                    f"node {i} has {len(self._conn[i])} connections, quota {ps.quota(i)}"
                )
            for j in self._conn[i]:
                if not ps.has_edge(i, j):
                    raise InvalidMatchingError(
                        f"matched edge ({i},{j}) is not a potential connection"
                    )

    def is_feasible(self, ps: PreferenceSystem) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(ps)
        except InvalidMatchingError:
            return False
        return True

    def residual_quota(self, ps: PreferenceSystem, i: int) -> int:
        """Remaining quota ``b_i - c_i`` of node ``i``."""
        return ps.quota(i) - len(self._conn[i])

    def is_maximal(self, ps: PreferenceSystem) -> bool:
        """Whether no unmatched potential edge could still be added.

        Greedy outputs are always maximal; useful as a cheap certificate
        in tests.
        """
        for i, j in ps.edges():
            if (
                j not in self._conn[i]
                and len(self._conn[i]) < ps.quota(i)
                and len(self._conn[j]) < ps.quota(j)
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._n == other._n and self._conn == other._conn

    def __hash__(self) -> int:
        return hash((self._n, self.edge_set()))

    def __len__(self) -> int:
        return self.size()

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges())

    def __contains__(self, edge: Edge) -> bool:
        i, j = edge
        return self.has_edge(i, j)

    def __repr__(self) -> str:
        return f"Matching(n={self._n}, size={self.size()})"
