"""Mixed populations: LID adopters among legacy peers.

The paper claims its guarantees for "peers that follow [the method]
(either a group or the whole overlay)" (§1/§2).  This module makes that
setting executable: a fraction of nodes are *adopters* that run LID
with proper eq.-9 weight lists, the rest are *legacy* peers that speak
the same PROP/REJ protocol but rank their neighbours by private,
arbitrary orders (they ignore the weight convention).

Two phenomena emerge, both measured by experiment F6:

1. **Deadlock risk** — Lemma 5's termination proof needs the *symmetric*
   weight order; with legacy nodes in the population, communication
   cycles (each node awaiting the next one's answer) become possible
   and the system can quiesce with unfinished nodes.  This is the
   empirical argument for the weight convention: it is not merely an
   optimisation device but the termination mechanism.
2. **Adopter advantage** — in non-deadlocked runs, adopters'
   satisfaction exceeds legacy peers', and degrades gracefully as the
   adopter fraction falls.

Legacy nodes reuse :class:`~repro.core.lid.LidNode` verbatim with a
shuffled weight list — the protocol machinery is identical; only the
ranking convention differs, which isolates exactly the paper's
assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.lid import LidNode
from repro.core.matching import Matching
from repro.core.weights import WeightTable
from repro.distsim.metrics import SimMetrics
from repro.distsim.network import LatencyModel, Network
from repro.distsim.scheduler import Simulator
from repro.utils.rng import spawn_rng
from repro.utils.validation import ProtocolError

__all__ = ["MixedRunResult", "run_mixed_adoption"]


@dataclass
class MixedRunResult:
    """Outcome of one mixed-population run.

    ``deadlocked_nodes`` lists nodes that never finished: the run
    quiesced with proposals pending around a communication cycle —
    exactly the failure mode Lemma 5 excludes for all-adopter
    populations.  ``matching`` contains the symmetric locks formed
    before the stall (locks are always symmetric at quiescence because
    a lock forms at each endpoint upon delivery of the two crossing
    PROPs).
    """

    matching: Matching
    metrics: SimMetrics
    adopters: frozenset[int]
    deadlocked_nodes: list[int]

    @property
    def deadlocked(self) -> bool:
        """Whether any node failed to terminate."""
        return bool(self.deadlocked_nodes)


def run_mixed_adoption(
    wt: WeightTable,
    quotas: Sequence[int],
    adopters: Sequence[int],
    legacy_seed: int = 0,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
) -> MixedRunResult:
    """Run the PROP/REJ protocol with only ``adopters`` honouring eq.-9.

    Parameters
    ----------
    adopters:
        Node ids that use the true weight list; every other node ranks
        its neighbours in a private uniformly random order derived from
        ``legacy_seed``.
    """
    n = wt.n
    adopter_set = frozenset(int(a) for a in adopters)
    for a in adopter_set:
        if not (0 <= a < n):
            raise ValueError(f"adopter {a} outside 0..{n-1}")
    nodes = []
    for i in range(n):
        wl = wt.weight_list(i)
        if i not in adopter_set:
            rng = spawn_rng(legacy_seed, "legacy", str(i))
            wl = [wl[int(k)] for k in rng.permutation(len(wl))]
        nodes.append(LidNode(wl, quotas[i]))
    network = Network(n, latency=latency, links=wt.edges(), seed=seed)
    sim = Simulator(network, nodes)
    sim.run()

    deadlocked = [i for i, nd in enumerate(nodes) if not nd.finished]
    matching = Matching(n)
    for i, nd in enumerate(nodes):
        for j in nd.locked:
            if i not in nodes[j].locked:
                raise ProtocolError(f"asymmetric lock {i} ~ {j} at quiescence")
            if i < j:
                matching.add(i, j)
    return MixedRunResult(
        matching=matching,
        metrics=sim.metrics,
        adopters=adopter_set,
        deadlocked_nodes=deadlocked,
    )
