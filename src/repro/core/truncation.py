"""Round-truncated ("almost stable") LID: the shared truncation contract.

Floréen et al. ("Almost stable matchings in constant time") and
Ostrovsky–Rosenbaum ("Fast distributed almost stable matchings") show
that cutting a propose/accept protocol after ``k`` rounds leaves only a
vanishing fraction of blocking pairs.  This module defines the one
contract every static LID engine implements for ``max_rounds=k``:

- execute exactly ``k`` synchronous delivery waves (the unit-latency
  clock: wave ``r`` delivers the messages sent during wave ``r - 1``;
  the event-driven engines map this onto ``Simulator.run(max_time=k)``,
  which processes every delivery at virtual time ``<= k``);
- stop, *dropping* the in-flight wave ``k + 1`` undelivered;
- extract only the **mutual** locks — a directed lock whose reverse
  direction never locked (the partner's confirming ``PROP`` was still
  in flight) is *released*, counted in
  :attr:`TruncationReport.released_locks`.

The extracted edge set is a feasible partial matching (locks never
exceed quota, and mutuality is enforced by construction), and it is
identical across engines and shard counts for any ``k``: the per-slot
lock round is determined by proposal *send* rounds, which are invariant
under the within-round reordering that distinguishes the engines'
schedules (the same Lemma 3–6 argument that makes the converged
matching schedule-invariant, applied at a round boundary).  The
cross-engine truncation conformance suite pins this empirically.

``max_rounds=None`` is the undisturbed protocol — every engine's output
stays byte-for-byte what it was before truncation existed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "TruncationReport",
    "finalize_truncation",
    "lic_baseline_satisfaction",
    "validate_max_rounds",
]


@dataclass(frozen=True)
class TruncationReport:
    """What a (possibly) round-capped LID run did and what it cost.

    The structural fields (``max_rounds`` / ``rounds`` / ``converged`` /
    ``released_locks``) are filled by every engine from its own run
    state.  The *quality* fields need the :class:`PreferenceSystem` the
    weights came from, so they stay ``None`` at the engine layer and are
    filled by :func:`finalize_truncation` (which
    :func:`repro.core.lid.solve_lid` calls for truncated runs).

    Attributes
    ----------
    max_rounds:
        The requested round budget (``None`` = run to convergence).
    rounds:
        Delivery waves actually executed — ``min(k, natural quiescence
        round)``.
    converged:
        Whether the run quiesced *within* the budget (no pending
        deliveries when it stopped).  A converged truncated run equals
        the untruncated run bit for bit.
    released_locks:
        Directed one-sided locks dropped at extraction (the partner's
        confirming ``PROP`` was still in flight).  Always ``0`` when
        ``converged``.
    blocking_pairs:
        ``len(baselines.verify.blocking_pairs(ps, matching))`` — the
        rank-based almost-stability measure.  Monotone non-increasing in
        ``k`` (truncated matchings are nested: locks are permanent, so
        the round-``k`` edge set is a subset of round ``k+1``'s), but
        *not* 0 at convergence — LID is a Theorem-3 approximation, not a
        classically stable mechanism.
    weighted_blocking_pairs:
        ``baselines.verify.count_weighted_blocking_pairs`` — blocking
        under the eq.-9 total-order keys.  Exactly ``0`` at convergence
        (locally dominant selection leaves no weight-blocking pair), so
        this is the distance-to-fixpoint measure the CI gate pins.
    satisfaction:
        Full eq.-1 satisfaction of the truncated matching.
    satisfaction_ratio:
        ``satisfaction`` over the converged (LIC) matching's
        satisfaction — the fraction of the protocol's final quality
        already secured after ``k`` rounds (``1.0`` at convergence).
    """

    max_rounds: Optional[int]
    rounds: int
    converged: bool
    released_locks: int
    blocking_pairs: Optional[int] = None
    weighted_blocking_pairs: Optional[int] = None
    satisfaction: Optional[float] = None
    satisfaction_ratio: Optional[float] = None


def validate_max_rounds(max_rounds) -> Optional[int]:
    """Normalise a ``max_rounds`` argument (``None`` or an int ``>= 0``).

    ``0`` is legal and yields the empty matching: no delivery wave runs,
    and locks only ever form on deliveries.
    """
    if max_rounds is None:
        return None
    if isinstance(max_rounds, bool) or not isinstance(max_rounds, int):
        raise ValueError(
            f"max_rounds must be None or a non-negative int, got {max_rounds!r}"
        )
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be >= 0, got {max_rounds}")
    return int(max_rounds)


def lic_baseline_satisfaction(ps) -> float:
    """Satisfaction of the converged matching, without running LID.

    By Lemmas 3–4 the converged LID matching *is* the LIC edge set, so
    the truncation baseline is one (cheap, vectorised) LIC solve — no
    second protocol simulation.
    """
    from repro.core.fast import FastInstance, lic_matching_fast

    fi = FastInstance.from_preference_system(ps)
    return float(lic_matching_fast(fi).total_satisfaction(ps))


def finalize_truncation(
    report: TruncationReport,
    ps,
    matching,
    wt=None,
    baseline_satisfaction: Optional[float] = None,
) -> TruncationReport:
    """Fill the quality fields of an engine-produced report.

    ``wt`` (the run's :class:`~repro.core.weights.WeightTable`) enables
    the weighted blocking-pair count; without it that field stays
    ``None``.  ``baseline_satisfaction`` lets callers that already
    solved LIC on the instance (the grid engine, benchmarks) skip the
    baseline solve.
    """
    from repro.baselines.verify import (
        count_blocking_pairs,
        count_weighted_blocking_pairs,
    )

    sat = float(matching.total_satisfaction(ps))
    if baseline_satisfaction is None:
        baseline_satisfaction = lic_baseline_satisfaction(ps)
    ratio = sat / baseline_satisfaction if baseline_satisfaction > 0 else 1.0
    return replace(
        report,
        blocking_pairs=count_blocking_pairs(ps, matching),
        weighted_blocking_pairs=(
            None if wt is None else count_weighted_blocking_pairs(ps, matching, wt)
        ),
        satisfaction=sat,
        satisfaction_ratio=ratio,
    )
