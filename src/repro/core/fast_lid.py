"""Round-batched fast LID engine (Algorithm 1 on flat arrays).

:func:`repro.core.lid.run_lid` executes the faithful Algorithm 1 one
``heapq`` event at a time through :class:`~repro.distsim.scheduler.Simulator`
— per message it pays a heap push/pop, a :class:`Message` allocation,
four ``Counter`` updates and a handler dispatch, which makes the LID
rows of experiments F2/F4/T4 the dominant wall-clock cost of the suite
beyond ``n ≈ 20k``.  This module is the array-backed replacement for the
protocol's *default* channel assumptions (reliable FIFO unit-latency
point-to-point links, no loss, no retransmission): the configuration
every headline experiment uses.

Why round batching is exact
---------------------------

Under unit constant latency every message sent at virtual time ``r``
is delivered at ``r + 1``, so the asynchronous execution collapses into
synchronous PROP/REJ *waves*: round ``r + 1`` delivers exactly the
messages sent during round ``r``.  Two facts make a wave loop replay the
reference event loop **bit-identically** rather than merely
equivalently:

1. *Receivers are independent within a round.*  A handler mutates only
   the receiving node's state and emits messages that are delivered next
   round, so processing round ``r``'s deliveries in any order that
   preserves each receiver's per-message subsequence reproduces every
   node's state transitions exactly.
2. *The reference delivery order is the send order.*  ``heapq`` orders
   events by ``(time, insertion counter)``; with all of round ``r``'s
   deliveries sharing one time, the counter — i.e. the order messages
   were sent in round ``r - 1`` — is the only ordering authority.  A
   two-list wave loop (process current round in order, append sends to
   the next round in handler order) therefore *is* the reference
   schedule.

Order genuinely matters: per-node ``props_sent``/``rejs_sent`` and the
``late_messages`` count are **not** invariants of arbitrary reordering.
Example: a node that processes a REJ and tops up toward neighbour ``k``
before processing ``k``'s same-round in-flight REJ sends a PROP the
opposite interleaving never sends.  (The *matching* is order-invariant
— Lemmas 3–6: the locked edges are exactly the locally heaviest ones,
the LIC edge set — but this engine reproduces the message statistics
too, so the differential suite can pin every observable.)

Implementation
--------------

The instance is lowered once to directed-slot arrays (the weight lists
of all nodes concatenated in CSR layout, each slot paired with its
reverse slot via the unique undirected-edge codes also used by
:class:`~repro.core.fast.FastInstance`).  A message is then a single
``int`` packing ``receiver << SH | receiver_slot << 1 | is_rej`` — no
:class:`Message` objects, no heap, and no table lookups on delivery.

- **Round 0** (the initial PROP burst, typically ~⅓ of all traffic) is
  fully vectorised: a NumPy mask proposes to the top ``min(b_i, deg_i)``
  weight-list entries of every node at once, and nodes with an empty
  effective quota terminate immediately with a bulk REJ fan-out.
- **Rounds ≥ 1** run a tight flat-array state machine over the wave:
  per-slot ``U``/``P``/``A``/``K`` membership is four flag bits in one
  state bytearray (one read + one write per transition), the per-node
  weight-list cursor a plain list, so one delivery costs a handful of
  list/bytearray index operations instead of the simulator's object
  machinery.
- Phase timers (``build_weights`` / ``sim_loop`` / ``extract``) are
  recorded in :attr:`SimMetrics.phase_seconds` so benchmarks can
  attribute time; see ``docs/performance.md``.

Every observable of the returned :class:`FastLidResult` — matching,
per-node PROP/REJ counts, round counts, late messages, per-kind and
per-node metric counters — is pinned to the reference ``run_lid`` by
the differential suite in ``tests/core/test_fast_lid.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.fast import FastInstance, _coerce_instance
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.truncation import TruncationReport, validate_max_rounds
from repro.core.weights import WeightTable
from repro.distsim.metrics import SimMetrics
from repro.telemetry.probes import ProbeSample
from repro.telemetry.spans import Telemetry
from repro.utils.validation import ProtocolError

__all__ = ["FastLidResult", "lid_matching_fast"]

PROP = "PROP"
REJ = "REJ"


@dataclass
class FastLidResult:
    """Outcome of a fast-engine LID run.

    Mirrors :class:`repro.core.lid.LidResult` field for field except that
    per-node statistics are arrays (``props_sent`` / ``rejs_sent``)
    instead of a list of node objects — the engine has no node objects.

    Attributes
    ----------
    matching:
        The locked edge set (symmetric by construction, checked).
    metrics:
        :class:`SimMetrics` with the same counters the simulator would
        have produced, plus ``phase_seconds``.
    props_sent, rejs_sent:
        ``int64[n]`` per-node message counts, bit-identical to the
        reference nodes' ``props_sent`` / ``rejs_sent``.
    late_messages:
        Deliveries discarded because the receiver had terminated.
    truncation:
        The shared :class:`~repro.core.truncation.TruncationReport`
        (structural fields only; quality fields are filled by
        ``solve_lid``).  Present for every run — ``max_rounds=None``
        runs report ``converged=True`` with zero released locks.
    """

    matching: Matching
    metrics: SimMetrics
    props_sent: np.ndarray
    rejs_sent: np.ndarray
    late_messages: int
    truncation: Optional[TruncationReport] = None

    @property
    def prop_messages(self) -> int:
        """Total ``PROP`` messages sent."""
        return self.metrics.sent_by_kind.get(PROP, 0)

    @property
    def rej_messages(self) -> int:
        """Total ``REJ`` messages sent."""
        return self.metrics.sent_by_kind.get(REJ, 0)

    @property
    def rounds(self) -> float:
        """Virtual quiescence time (synchronous rounds under unit latency)."""
        return self.metrics.end_time

    @property
    def causal_rounds(self) -> int:
        """Longest causal message chain — exact asynchronous round count."""
        return self.metrics.max_depth


def _directed_layout(fi: FastInstance):
    """CSR weight lists + reverse-slot pairing for all ``2m`` directed slots.

    Returns ``(start, nbr, rev, owner)`` where ``start`` is the ``n+1``
    offset array, ``nbr[s]`` the neighbour of slot ``s``, ``rev[s]`` the
    slot of the reverse direction and ``owner[s]`` the slot's node.  The
    slots of node ``v`` occupy ``start[v]:start[v+1]`` in *weight-list
    order*: strictly decreasing total-order key ``(w, min, max)``,
    identical to :meth:`WeightTable.weight_list`.
    """
    n, m = fi.n, fi.m
    if m == 0:
        z = np.zeros(0, dtype=np.int64)
        return np.zeros(n + 1, dtype=np.int64), z, z, z
    # The sort key (w, min, max) desc is an *edge* attribute — identical
    # for both directions — so rank the m edges once and order the 2m
    # directed entries by (owner, edge rank).  ``sorted_order`` IS that
    # edge ranking: the instance stores canonical ascending (i, j), so
    # its stable-argsort-reversed order equals descending (w, i, j) —
    # the exact ``WeightTable.weight_list`` key (and it is cached on the
    # instance for lower-once/solve-many callers).
    edge_order = fi.sorted_order()
    # Interleaving the two directed halves of each edge lists all 2m
    # entries in edge-rank order; a stable sort by owner then yields
    # within-owner rank-ascending slots.  Owner values fit int32, which
    # keeps the radix argsort ~3x cheaper than a 64-bit composite key.
    owner2 = np.concatenate([fi.i, fi.j])
    pre = np.empty(2 * m, dtype=np.int64)
    pre[0::2] = edge_order
    pre[1::2] = edge_order + m
    perm = pre[np.argsort(owner2[pre].astype(np.int32), kind="stable")]
    owner = owner2[perm]
    nbr = np.concatenate([fi.j, fi.i])[perm]
    deg = np.bincount(owner2, minlength=n)
    start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=start[1:])
    # pair each slot with its reverse direction through the inverse
    # permutation: directed entries d and d+m are the two halves of
    # edge d, so their sorted positions point at each other
    inv = np.empty(2 * m, dtype=np.int64)
    inv[perm] = np.arange(2 * m, dtype=np.int64)
    rev = np.empty(2 * m, dtype=np.int64)
    rev[inv[:m]] = inv[m:]
    rev[inv[m:]] = inv[:m]
    return start, nbr, rev, owner


def lid_matching_fast(
    src: "FastInstance | PreferenceSystem | WeightTable",
    quotas: Optional[Sequence[int]] = None,
    *,
    max_events: Optional[int] = None,
    max_rounds: Optional[int] = None,
    telemetry=None,
    probe=None,
) -> FastLidResult:
    """Execute LID as synchronous PROP/REJ waves over flat arrays.

    Bit-identical to ``run_lid(wt, quotas)`` with default channel
    parameters (reliable FIFO unit-latency, no loss, no trace): same
    matching, same per-node ``props_sent``/``rejs_sent``, same round and
    late-message counts, same metric counters.

    Parameters
    ----------
    src:
        A :class:`FastInstance` (preferred — lower once, solve many), a
        :class:`PreferenceSystem`, or a :class:`WeightTable` (requires
        ``quotas``).
    quotas:
        Connection quotas ``b_i``; defaults to the source's own quotas.
    max_events:
        Hang-detector budget counted over *processed* (non-late)
        deliveries, mirroring the simulator's documented default
        ``1000 + 500·n + 50·initial_burst``.  The faithful protocol
        sends at most two messages per directed edge, so the default is
        never reached; it exists to turn a protocol bug into an error
        instead of a hang.
    max_rounds:
        Round-truncated ("almost stable") mode: execute at most this
        many delivery waves, then stop, drop the in-flight wave, and
        extract only the mutual locks (one-sided locks are released —
        see :mod:`repro.core.truncation`).  ``None`` (the default) runs
        to convergence with byte-identical behaviour to before the knob
        existed; ``k`` at or beyond the convergence round is equivalent
        to ``None`` bit for bit.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`
        (:data:`~repro.telemetry.NULL` to disable timing); when omitted
        a private instance still fills ``metrics.phase_seconds``.
    probe:
        Optional :class:`~repro.telemetry.probes.ConvergenceProbe`.
        Sampled with the exact tick convention of ``Simulator.run`` —
        ticks are caught up against the next wave's delivery time plus
        one final sample at quiescence — so the trajectory is
        bit-identical to a probed reference run.  Sampling costs one
        ``O(m)`` NumPy scan per tick; the wave hot loop itself is
        untouched.
    """
    max_rounds = validate_max_rounds(max_rounds)
    tel = telemetry if telemetry is not None else Telemetry()
    mark = tel.mark()
    with tel.span("build_weights"):
        fi = _coerce_instance(src, quotas)
        n, m = fi.n, fi.m
        if quotas is None:
            quota = fi.quota
        else:
            quota = np.asarray([int(q) for q in quotas], dtype=np.int64)
            if quota.shape != (n,):
                raise ValueError(f"quotas length {len(quotas)} != n={n}")

        start, nbr, rev, owner = _directed_layout(fi)
        deg = np.diff(start)

        # ---- round 0: vectorised initial top-up + bulk REJ fan-out ----
        eff = np.minimum(quota, deg)  # proposals each node can place now
        slot_pos = np.arange(2 * m, dtype=np.int64) - start[owner]
        prop0 = slot_pos < eff[owner]  # top-of-weight-list burst
        fin0 = eff <= 0  # quota 0 or no neighbours: terminate at once
        rej0 = fin0[owner]  # ... broadcasting REJ to every neighbour

        # A message is one int carrying everything its *receiver* needs:
        # ``receiver << SH | receiver_slot << 1 | is_rej``.  Sender slot
        # s delivers on the receiver's paired slot rev[s] of node
        # nbr[s], so the handler below runs on two shifts and zero
        # table lookups.
        rbits = (2 * m).bit_length()
        SH = rbits + 1
        RMASK = (1 << rbits) - 1
        packed = (nbr << SH) | (rev << 1)  # indexed by *sender* slot
        cur = (packed | rej0)[prop0 | rej0].tolist()
        packed_l = packed.tolist()

        # ---- per-slot / per-node protocol state -----------------------
        # one flag byte per directed slot: U membership, P membership,
        # A (approached) and K (locked) — single read/write per
        # transition
        IN, PR, AP, LK = 1, 2, 4, 8
        st = bytearray(
            (np.where(rej0, 0, IN) | np.where(prop0, PR, 0))
            .astype(np.uint8)
            .tobytes()
        )
        finished = bytearray(fin0.astype(np.uint8).tobytes())
        room = (quota - eff).tolist()  # b_i - |P_i|: top-up capacity left
        n_out = eff.tolist()  # |P_i \ K_i|  (outstanding proposals)
        cursor = (start[:-1] + eff).tolist()  # weight-list scan position
        props = eff.tolist()
        rejs = np.where(fin0, deg, 0).tolist()
        received = [0] * n

        end_l = start.tolist()[1:]

        if max_events is None:
            max_events = 1000 + 500 * n + 50 * len(cur)

    total_quota = int(quota.sum())

    def _sample(tick: float) -> None:
        """One probe sample — the array equivalent of ``sample_nodes``."""
        stv = np.frombuffer(bytes(st), dtype=np.uint8)
        lk_mask = (stv & LK) != 0
        locks = int(lk_mask.sum())
        matched = (
            int(np.count_nonzero(np.bincount(owner[lk_mask], minlength=n)))
            if locks
            else 0
        )
        probe.record(
            ProbeSample(
                t=float(tick),
                locks=locks,
                matched_nodes=matched,
                finished_nodes=int(sum(finished)),
                outstanding_props=int(sum(n_out)),
                props_sent=int(sum(props)),
                rejs_sent=int(sum(rejs)),
                quota_fill=(locks / total_quota) if total_quota else 0.0,
            )
        )

    probe_tick = 0.0

    # ---- synchronous waves: round r delivers round r-1's sends --------
    rounds = 0
    events = 0
    processed = 0  # non-late deliveries, charged against max_events
    late = 0
    delivered_prop = 0
    delivered_rej = 0
    max_depth = 0
    with tel.span("sim_loop"):
        while cur:
            if max_rounds is not None and rounds >= max_rounds:
                break  # round budget spent: drop the in-flight wave
            if probe is not None:
                # catch the tick counter up to this wave's delivery time
                # — the same peek-ahead the reference Simulator.run does
                while rounds + 1 >= probe_tick:
                    _sample(probe_tick)
                    probe_tick += probe.interval
            rounds += 1
            events += len(cur)
            delivered_before = delivered_prop + delivered_rej
            nxt: list[int] = []
            append = nxt.append
            for code in cur:
                j = code >> SH
                if finished[j]:
                    # receiver left its receive loop; the message crossed
                    # its final REJ broadcast (see §5 termination analysis)
                    late += 1
                    continue
                r = (code >> 1) & RMASK
                v = st[r]
                received[j] += 1
                if code & 1:  # REJ on slot r's edge
                    delivered_rej += 1
                    st[r] = v & ~IN
                    if v & PR:
                        room[j] += 1
                        n_out[j] -= 1
                else:  # PROP on slot r's edge
                    delivered_prop += 1
                    if v & (PR | LK) == PR:
                        # mutual proposal: lock without any extra message
                        st[r] = (v | AP | LK) & ~IN
                        n_out[j] -= 1
                    else:
                        st[r] = v | AP
                # top-up: propose to best unproposed unresolved
                # neighbours while below quota (steps 1/3 of Algorithm 1
                # — a single cursor sweep, monotone across the whole run)
                rm = room[j]
                if rm:
                    p = cursor[j]
                    end_j = end_l[j]
                    while rm and p < end_j:
                        v = st[p]
                        if v & (IN | PR) == IN:
                            rm -= 1
                            n_out[j] += 1
                            props[j] += 1
                            append(packed_l[p])
                            if v & AP:
                                st[p] = (v | PR | LK) & ~IN
                                n_out[j] -= 1
                            else:
                                st[p] = v | PR
                        p += 1
                    cursor[j] = p
                    room[j] = rm
                # termination: no outstanding proposals left (lines
                # 15-16).  The REJ fan-out scans from cursor[j], not
                # start[j]: every slot the cursor passed is proposed or
                # dead, and n_out == 0 means each proposal is locked or
                # rejected — either way IN is clear below the cursor, so
                # only the unscanned tail can still hold unresolved
                # neighbours.
                if n_out[j] == 0:
                    finished[j] = 1
                    sent_rejs = 0
                    for t in range(cursor[j], end_l[j]):
                        v = st[t]
                        if v & IN:
                            st[t] = v & ~IN
                            sent_rejs += 1
                            append(packed_l[t] | 1)
                    rejs[j] += sent_rejs
            if delivered_prop + delivered_rej > delivered_before:
                max_depth = rounds
            processed = delivered_prop + delivered_rej
            if processed > max_events:
                raise ProtocolError(
                    f"fast LID exceeded {max_events} deliveries without "
                    "quiescing; likely a protocol bug (Lemma 5 guarantees "
                    "termination)"
                )
            cur = nxt
        if probe is not None:
            # quiescence: exactly one final sample, like the reference
            # engine's empty-queue tick
            _sample(probe_tick)

    converged = not cur
    with tel.span("extract"):
        released = 0
        if max_rounds is None:
            if not all(finished):
                bad = next(i for i in range(n) if not finished[i])
                raise ProtocolError(
                    f"node {bad} did not finish (Lemma 5 violated?)"
                )
            lk = (np.frombuffer(bytes(st), dtype=np.uint8) & LK) != 0
            if m and not np.array_equal(lk, lk[rev]):
                s = int(np.flatnonzero(lk != lk[rev])[0])
                i_, j_ = int(owner[s]), int(nbr[s])
                raise ProtocolError(
                    f"asymmetric lock: {i_} locked {j_} but not vice versa"
                )
        else:
            # truncated: a one-sided lock means the partner's confirming
            # PROP was still in flight — release it (deterministically)
            # and keep only the mutual locks, which are feasible by
            # construction
            lk_raw = (np.frombuffer(bytes(st), dtype=np.uint8) & LK) != 0
            lk = lk_raw & lk_raw[rev]
            released = int(np.count_nonzero(lk_raw & ~lk))
        half = lk & (owner < nbr)
        matching = Matching.from_trusted_arrays(n, owner[half], nbr[half])

        metrics = SimMetrics()
        props_arr = np.asarray(props, dtype=np.int64)
        rejs_arr = np.asarray(rejs, dtype=np.int64)
        total_props = int(props_arr.sum())
        total_rejs = int(rejs_arr.sum())
        if total_props:
            metrics.sent_by_kind[PROP] = total_props
        if total_rejs:
            metrics.sent_by_kind[REJ] = total_rejs
        if delivered_prop:
            metrics.delivered_by_kind[PROP] = delivered_prop
        if delivered_rej:
            metrics.delivered_by_kind[REJ] = delivered_rej
        sent_arr = props_arr + rejs_arr
        nz = np.flatnonzero(sent_arr)
        metrics.sent_by_node.update(
            dict(zip(nz.tolist(), sent_arr[nz].tolist()))
        )
        metrics.received_by_node.update(
            {v: c for v, c in enumerate(received) if c}
        )
        metrics.events = events
        metrics.end_time = float(rounds)
        metrics.max_depth = max_depth
    metrics.phase_seconds = tel.phase_seconds(since=mark)
    return FastLidResult(
        matching=matching,
        metrics=metrics,
        props_sent=props_arr,
        rejs_sent=rejs_arr,
        late_messages=late,
        truncation=TruncationReport(
            max_rounds=max_rounds,
            rounds=rounds,
            converged=converged,
            released_locks=released,
        ),
    )
