"""LID — Local Information-based Distributed algorithm (Algorithm 1).

Every node ``i`` keeps four sets over its neighbourhood:

- ``U_i`` — unresolved neighbours (no final answer exchanged yet),
- ``P_i`` — neighbours ``i`` has proposed to (outstanding or locked),
- ``A_i`` — neighbours that proposed to ``i`` (approachers),
- ``K_i`` — locked (matched) neighbours,

and a *weight list*: its neighbours ordered by decreasing edge key
(eq. 9 weights, ties broken by node ids).  The protocol:

1. Propose (``PROP``) to the top ``b_i`` entries of the weight list.
2. A mutual proposal locks the edge at both endpoints (no extra message
   is needed — each endpoint observes the other's ``PROP``).
3. On receiving a rejection (``REJ``) for an outstanding proposal,
   propose to the next unproposed neighbour in weight order.
4. When no proposals are outstanding (``P_i \\ K_i = ∅`` — quota filled
   or candidates exhausted), send ``REJ`` to every remaining neighbour
   in ``U_i`` and terminate.

Lemma 5 (symmetric weights ⇒ no communication cycles) guarantees
termination; Lemmas 3–4 show the locked edges are exactly the locally
heaviest ones, i.e. the LIC edge set, giving the ½ weighted-matching
ratio (Theorem 2) and the ¼(1+1/b_max) satisfaction ratio (Theorem 3).

Implementation notes
--------------------
- Steps 1 and 3 are implemented by a single ``_top_up`` routine ("while
  ``|P_i| < b_i`` and an unproposed unresolved neighbour exists,
  propose to the best one").  After a rejection of an outstanding
  proposal this sends exactly one new ``PROP``; in all other states it
  sends none — precisely the paper's "a new PROP message is sent only
  if a previously asked node has explicitly declined".
- A terminated node has left its receive loop; the simulator discards
  messages addressed to it.  The analysis in §5 shows any such message
  crossed the terminating node's final ``REJ`` broadcast, so the sender
  learns the outcome regardless.  (The scheduler still counts these as
  ``late_messages`` so tests can assert how often it happens.)
- For the lossy-channel extension (A2, paper §7 future work) the node
  supports *polite* termination plus timer-based ``PROP``
  retransmission; see :class:`LidNode` parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.truncation import (
    TruncationReport,
    finalize_truncation,
    validate_max_rounds,
)
from repro.core.weights import WeightTable, satisfaction_weights
from repro.distsim.metrics import SimMetrics
from repro.distsim.network import LatencyModel, Network
from repro.distsim.node import ProtocolNode
from repro.distsim.scheduler import Simulator
from repro.distsim.tracing import Trace
from repro.telemetry.spans import Telemetry
from repro.utils.validation import ProtocolError

__all__ = ["LidNode", "LidResult", "run_lid", "solve_lid"]

PROP = "PROP"
REJ = "REJ"


class LidNode(ProtocolNode):
    """State machine of one LID participant.

    Parameters
    ----------
    weight_list:
        Neighbours in strictly decreasing edge-key order (node ``i``'s
        auxiliary *weight list*; see :meth:`WeightTable.weight_list`).
    quota:
        Connection quota ``b_i``.
    polite:
        When ``True`` the node does not hard-terminate: after finishing
        it keeps answering stray ``PROP`` messages with ``REJ``.  This
        is the behaviour required for the retransmission extension under
        message loss; the faithful Algorithm 1 uses ``polite=False``.
    retransmit_timeout:
        When set (virtual time units), outstanding proposals are
        re-sent until answered — the minimal reliability wrapper
        evaluated in experiment A2.  This is the *base* retry delay;
        the schedule is governed by ``backoff``.
    backoff:
        Retry schedule: ``"exponential"`` (default) doubles the delay
        per unanswered retry up to ``backoff_cap``, with up to 10%
        deterministic jitter when ``retransmit_rng`` is given;
        ``"none"`` is the legacy fixed-timer behaviour (every retry
        after exactly ``retransmit_timeout``).
    backoff_cap:
        Upper bound of the exponential delay (default
        ``8 * retransmit_timeout``).
    retransmit_rng:
        Seeded generator for retry jitter (``None`` = no jitter).
        :func:`run_lid` spawns one per node off the run seed.

    Retransmissions are counted in :attr:`retransmits_sent` (and in
    :attr:`SimMetrics.retransmissions`), *separately* from the fresh
    proposals in :attr:`props_sent`, so reliability overhead never
    contaminates the paper's message-complexity statistics.
    """

    def __init__(
        self,
        weight_list: Sequence[int],
        quota: int,
        polite: bool = False,
        retransmit_timeout: Optional[float] = None,
        backoff: str = "exponential",
        backoff_cap: Optional[float] = None,
        retransmit_rng=None,
    ):
        super().__init__()
        self.weight_list: list[int] = list(weight_list)
        self.quota = int(quota)
        self.polite = polite
        self.retransmit_timeout = retransmit_timeout
        if backoff not in ("none", "exponential"):
            raise ValueError(
                f"backoff must be 'none' or 'exponential', got {backoff!r}"
            )
        self.backoff = backoff
        if backoff_cap is not None and retransmit_timeout is not None:
            if backoff_cap < retransmit_timeout:
                raise ValueError(
                    f"backoff_cap ({backoff_cap}) below retransmit_timeout "
                    f"({retransmit_timeout})"
                )
        self.backoff_cap = backoff_cap
        self._retx_rng = retransmit_rng
        self._attempts: dict[int, int] = {}  # per-peer unanswered retries
        # protocol sets (paper names)
        self.unresolved: set[int] = set()   # U_i
        self.proposed: set[int] = set()     # P_i
        self.approachers: set[int] = set()  # A_i
        self.locked: set[int] = set()       # K_i
        self._pos = 0  # weight-list scan position (next unproposed candidate)
        self.finished = False
        # statistics
        self.props_sent = 0
        self.rejs_sent = 0
        self.retransmits_sent = 0
        self.anomalies = 0

    # -- protocol ------------------------------------------------------

    def on_start(self) -> None:
        self.unresolved = set(self.weight_list)
        self._process()

    def on_message(self, src: int, kind: str, payload) -> None:
        if kind == PROP:
            if src in self.locked:
                # duplicate of an already-locked proposal.  A *retry*
                # duplicate (timer retransmission) means the sender never
                # saw our PROP — our lock confirmation was lost — so we
                # re-send it.  Plain duplicates (stale retransmits
                # overtaken by the lock) are ignored, which breaks the
                # would-be PROP ping-pong between locked partners.  In
                # the faithful reliable-channel protocol neither case
                # can happen except from Byzantine peers.
                if self.retransmit_timeout is not None and payload == "retry":
                    self.send(src, PROP)
                    self._count_retransmit()
                else:
                    self.anomalies += 1
                return
            if self.finished:
                # polite mode: we already rejected everyone; answer the
                # (necessarily retransmitted) proposal again
                self.send(src, REJ)
                self.rejs_sent += 1
                return
            self.approachers.add(src)
            self._process()
        elif kind == REJ:
            if src in self.locked:
                # a locked partner never rejects (only Byzantine peers do)
                self.anomalies += 1
                return
            if src not in self.unresolved:
                self.anomalies += 1  # duplicate REJ
                return
            self.unresolved.discard(src)
            self.proposed.discard(src)
            self.approachers.discard(src)
            self._process()
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"LID node got unknown message kind {kind!r}")

    def on_timer(self, tag) -> None:
        # retransmission: tag is the neighbour the proposal went to
        if self.finished:
            return
        j = tag
        if j in self.proposed and j not in self.locked:
            self.send(j, PROP, payload="retry")
            self._count_retransmit()
            assert self.retransmit_timeout is not None
            self._attempts[j] = self._attempts.get(j, 0) + 1
            self.set_timer(self._retx_delay(j), j)

    # -- internals -------------------------------------------------------

    def _count_retransmit(self) -> None:
        self.retransmits_sent += 1
        if self.sim is not None:
            self.sim.metrics.retransmissions += 1

    def _retx_delay(self, j: int) -> float:
        """Delay until the next retry of the proposal to ``j``."""
        base = self.retransmit_timeout
        assert base is not None
        if self.backoff == "none":
            return base
        cap = self.backoff_cap if self.backoff_cap is not None else 8.0 * base
        d = min(base * 2.0 ** self._attempts.get(j, 0), cap)
        if self._retx_rng is not None:
            d *= 1.0 + 0.1 * float(self._retx_rng.random())
        return d

    def _outstanding(self) -> set[int]:
        """``P_i \\ K_i`` — proposals awaiting an answer."""
        return self.proposed - self.locked

    def _propose(self, j: int) -> None:
        self.proposed.add(j)
        self.send(j, PROP)
        self.props_sent += 1
        if self.retransmit_timeout is not None:
            self.set_timer(self._retx_delay(j), j)

    def _top_up(self) -> bool:
        """Propose to best unproposed unresolved neighbours up to quota."""
        sent = False
        while len(self.proposed) < self.quota:
            j = self._next_candidate()
            if j is None:
                break
            self._propose(j)
            sent = True
        return sent

    def _next_candidate(self) -> Optional[int]:
        while self._pos < len(self.weight_list):
            j = self.weight_list[self._pos]
            if j in self.unresolved and j not in self.proposed:
                self._pos += 1
                return j
            self._pos += 1
        return None

    def _try_lock(self) -> bool:
        """Lock every mutually proposed edge (lines 12–14)."""
        ready = self._outstanding() & self.approachers
        for v in ready:
            self.locked.add(v)
            self.approachers.discard(v)
            self.unresolved.discard(v)
        return bool(ready)

    def _process(self) -> None:
        if self.finished:
            return
        changed = True
        while changed:
            changed = self._try_lock()
            changed = self._top_up() or changed
        if not self._outstanding():
            self._finish()

    def _finish(self) -> None:
        """Lines 15–16: reject all unresolved neighbours and stop.

        The broadcast walks the weight list (not the ``unresolved`` set)
        so the send order is a deterministic function of the instance
        rather than of hash-table internals; schedules — and therefore
        message statistics — stay reproducible across interpreters, and
        the round-batched engine can replay them exactly.
        """
        self.finished = True
        for v in self.weight_list:
            if v in self.unresolved:
                self.send(v, REJ)
                self.rejs_sent += 1
        self.unresolved.clear()
        self.approachers.clear()
        if not self.polite:
            self.terminate()


@dataclass
class LidResult:
    """Outcome of a distributed LID run.

    Attributes
    ----------
    matching:
        The locked edge set (validated symmetric before construction).
    metrics:
        Simulator accounting (message counts, virtual end time, events).
    nodes:
        The node objects, exposing per-node statistics.
    late_messages:
        Deliveries discarded because the receiver had terminated.
    truncation:
        The shared :class:`~repro.core.truncation.TruncationReport`
        (structural fields; ``solve_lid`` fills the quality fields for
        truncated runs).
    """

    matching: Matching
    metrics: SimMetrics
    nodes: list[LidNode]
    late_messages: int
    truncation: Optional[TruncationReport] = None

    @property
    def prop_messages(self) -> int:
        """Total ``PROP`` messages sent."""
        return self.metrics.sent_by_kind.get(PROP, 0)

    @property
    def rej_messages(self) -> int:
        """Total ``REJ`` messages sent."""
        return self.metrics.sent_by_kind.get(REJ, 0)

    @property
    def rounds(self) -> float:
        """Virtual quiescence time (asynchronous rounds under unit latency)."""
        return self.metrics.end_time

    @property
    def causal_rounds(self) -> int:
        """Longest causal message chain — exact asynchronous round count,
        independent of the latency model."""
        return self.metrics.max_depth


def _extract_matching(nodes: Sequence[LidNode]) -> Matching:
    n = len(nodes)
    matching = Matching(n)
    for i, node in enumerate(nodes):
        for j in node.locked:
            if not (0 <= j < n) or i not in nodes[j].locked:
                raise ProtocolError(
                    f"asymmetric lock: {i} locked {j} but not vice versa"
                )
            if i < j:
                matching.add(i, j)
    return matching


def _extract_mutual_matching(nodes) -> tuple[Matching, int]:
    """Mutual locks of a truncated run; counts released one-sided locks.

    A directed lock whose reverse never locked means the partner's
    confirming ``PROP`` was still in flight at the round cap — the lock
    is released (the paper's unresolved state resolves to "no edge"),
    matching the array engines' ``lk & lk[rev]`` extraction.
    """
    n = len(nodes)
    matching = Matching(n)
    released = 0
    for i, node in enumerate(nodes):
        for j in node.locked:
            if 0 <= j < n and i in nodes[j].locked:
                if i < j:
                    matching.add(i, j)
            else:
                released += 1
    return matching, released


def run_lid(
    wt: WeightTable,
    quotas: Sequence[int],
    latency: Optional[LatencyModel] = None,
    fifo: bool = True,
    seed: int = 0,
    trace: Optional[Trace] = None,
    drop_filter=None,
    retransmit_timeout: Optional[float] = None,
    backoff: str = "exponential",
    enforce_links: bool = True,
    max_events: Optional[int] = None,
    max_rounds: Optional[int] = None,
    telemetry=None,
    probe=None,
) -> LidResult:
    """Execute LID over a weight table on the discrete-event simulator.

    Parameters mirror the simulator substrate; the defaults give the
    faithful Algorithm 1 over reliable FIFO unit-latency channels.  Any
    latency model / FIFO setting yields the *same* matching (the LIC edge
    set) — a consequence of Lemmas 3–6 that the test suite checks
    property-style.

    With ``retransmit_timeout`` set, retries follow a capped
    exponential ``backoff`` schedule with per-node seeded jitter
    (``backoff="none"`` restores the legacy fixed timer); see
    :class:`LidNode`.

    ``max_rounds=k`` truncates the run after ``k`` delivery waves
    (``Simulator.run(max_time=k + 0.5)`` — under the default
    unit-latency channels wave ``r``'s deliveries land at virtual time
    ``r``, shifted by at most a few ULPs of FIFO tie-break skew, so the
    horizon sits at the midpoint of the inter-wave gap): no new
    proposal wave is scheduled past the cap, the in-flight wave is
    dropped, and one-sided locks are released at extraction, keeping
    only the mutual ones (see :mod:`repro.core.truncation`).  ``None``
    runs to convergence, byte-identical to before the knob existed.

    ``telemetry`` is a :class:`repro.telemetry.Telemetry` (or
    :data:`~repro.telemetry.NULL` to disable timing entirely); when
    omitted a private instance still populates
    ``metrics.phase_seconds`` with the ``build_weights`` / ``sim_loop``
    / ``extract`` phases.  ``probe`` is an optional
    :class:`~repro.telemetry.probes.ConvergenceProbe`; see
    :meth:`Simulator.run` for the tick convention (sampling never
    perturbs the run).

    Returns
    -------
    LidResult
        Matching plus message/time accounting.
    """
    from repro.utils.rng import spawn_rng

    n = wt.n
    if len(quotas) != n:
        raise ValueError(f"quotas length {len(quotas)} != n={n}")
    max_rounds = validate_max_rounds(max_rounds)
    polite = retransmit_timeout is not None
    tel = telemetry if telemetry is not None else Telemetry()
    mark = tel.mark()
    with tel.span("build_weights"):
        nodes = [
            LidNode(
                wt.weight_list(i),
                quotas[i],
                polite=polite,
                retransmit_timeout=retransmit_timeout,
                backoff=backoff,
                retransmit_rng=(
                    spawn_rng(seed, "lid-retransmit", str(i))
                    if retransmit_timeout is not None and backoff != "none"
                    else None
                ),
            )
            for i in range(n)
        ]
        network = Network(
            n,
            latency=latency,
            fifo=fifo,
            links=wt.edges() if enforce_links else None,
            drop_filter=drop_filter,
            seed=seed,
        )
        sim = Simulator(network, nodes, trace=trace)
    with tel.span("sim_loop"):
        metrics = sim.run(
            max_events=max_events,
            max_time=max_rounds + 0.5 if max_rounds is not None else None,
            probe=probe,
        )
    with tel.span("extract"):
        released = 0
        if max_rounds is None:
            for i, node in enumerate(nodes):
                if not node.finished:
                    raise ProtocolError(
                        f"node {i} did not finish (Lemma 5 violated?)"
                    )
            matching = _extract_matching(nodes)
        else:
            matching, released = _extract_mutual_matching(nodes)
    metrics.phase_seconds = tel.phase_seconds(since=mark)
    return LidResult(
        matching=matching,
        metrics=metrics,
        nodes=nodes,
        late_messages=sim.late_messages,
        truncation=TruncationReport(
            max_rounds=max_rounds,
            rounds=int(metrics.end_time),
            converged=(sim.pending_events() == 0),
            released_locks=released,
        ),
    )


def solve_lid(
    ps: PreferenceSystem,
    latency: Optional[LatencyModel] = None,
    fifo: bool = True,
    seed: int = 0,
    trace: Optional[Trace] = None,
    backend: str = "reference",
    drop_filter=None,
    retransmit_timeout: Optional[float] = None,
    max_rounds: Optional[int] = None,
    telemetry=None,
    probe=None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    jit: Optional[bool] = None,
) -> tuple[LidResult, WeightTable]:
    """End-to-end LID pipeline for a preference system.

    Builds the eq.-9 weights, runs LID, validates the result against the
    instance, and returns ``(result, weight_table)``.  By Theorem 3 the
    matching's full satisfaction is a ¼(1+1/b_max)-approximation of the
    maximising-satisfaction b-matching optimum.

    ``backend="fast"`` replays the default channel model (reliable FIFO
    unit latency — the faithful Algorithm 1 schedule) through the
    round-batched :func:`repro.core.fast_lid.lid_matching_fast` engine,
    returning a bit-identical matching and message statistics at a
    fraction of the cost.  It therefore rejects a custom ``latency`` /
    ``trace`` / non-FIFO configuration **and any fault-injected run**
    (``drop_filter`` / ``retransmit_timeout``): round batching is only
    exact when every sent message is delivered exactly one round later,
    which loss and retransmission timers break.  Such runs raise
    :class:`ValueError` naming the fallback — re-run with
    ``backend="reference"``, the event-by-event simulator, which
    executes them faithfully (the fallback is tested end-to-end in
    ``tests/core/test_backend.py``).  The fast result mirrors
    :class:`LidResult` except that per-node statistics live in
    ``props_sent`` / ``rejs_sent`` arrays rather than node objects.

    ``backend="sharded"`` runs the same faithful schedule through the
    partitioned engine of :mod:`repro.core.sharded_lid` — the identical
    matching for any shard count, with per-shard wave loops that can
    execute in ``multiprocessing`` workers (``shard_workers``) and
    optionally under numba (``jit``; graceful fallback when absent).
    It shares the fast backend's channel/fault restrictions;
    ``shards`` / ``shard_workers`` / ``jit`` raise :class:`ValueError`
    with any other backend.

    ``max_rounds=k`` runs the round-truncated almost-stable variant on
    whichever backend is selected — the identical feasible partial
    matching on all of them — and fills the quality fields of
    ``result.truncation`` (blocking-pair count, satisfaction ratio vs
    the converged LIC matching); see :mod:`repro.core.truncation`.
    """
    from repro.core.backend import resolve_backend_name

    backend = resolve_backend_name(backend)
    if backend != "sharded" and (
        shards is not None or shard_workers is not None or jit is not None
    ):
        raise ValueError(
            "shards / shard_workers / jit only apply to backend='sharded' "
            f"(got backend={backend!r})"
        )
    if backend in ("fast", "sharded"):
        if latency is not None or trace is not None or not fifo:
            raise ValueError(
                f"backend={backend!r} replays only the default reliable FIFO "
                "unit-latency channels; use backend='reference' for custom "
                "latency, tracing, or non-FIFO runs"
            )
        if drop_filter is not None or retransmit_timeout is not None:
            raise ValueError(
                f"backend={backend!r} cannot replay fault-injected runs: "
                "message loss and retransmission timers break the one-round "
                "delivery assumption of the round-batched engine; use "
                "backend='reference' (the event-by-event simulator) for "
                "drop_filter / retransmit_timeout runs"
            )
        from repro.core.fast import FastInstance
        from repro.core.fast_lid import lid_matching_fast

        fi = FastInstance.from_preference_system(ps)
        if backend == "sharded":
            from repro.core.sharded_lid import sharded_lid_matching

            result = sharded_lid_matching(
                fi,
                shards=4 if shards is None else shards,
                workers=0 if shard_workers is None else shard_workers,
                jit=jit,
                max_rounds=max_rounds,
                telemetry=telemetry,
                probe=probe,
            )
        else:
            result = lid_matching_fast(
                fi, max_rounds=max_rounds, telemetry=telemetry, probe=probe
            )
        result.matching.validate(ps)
        wt = fi.weight_table()
        if max_rounds is not None:
            result.truncation = finalize_truncation(
                result.truncation, ps, result.matching, wt=wt
            )
        return result, wt
    wt = satisfaction_weights(ps)
    result = run_lid(
        wt,
        ps.quotas,
        latency=latency,
        fifo=fifo,
        seed=seed,
        trace=trace,
        drop_filter=drop_filter,
        retransmit_timeout=retransmit_timeout,
        max_rounds=max_rounds,
        telemetry=telemetry,
        probe=probe,
    )
    result.matching.validate(ps)
    if max_rounds is not None:
        result.truncation = finalize_truncation(
            result.truncation, ps, result.matching, wt=wt
        )
    return result, wt
