"""The paper's core contribution: satisfaction b-matching via weighted matching.

Public surface:

- :class:`~repro.core.preferences.PreferenceSystem` — the problem instance,
- :mod:`~repro.core.satisfaction` — the §3 metric (eq. 1/4/5/6),
- :class:`~repro.core.weights.WeightTable` /
  :func:`~repro.core.weights.satisfaction_weights` — eq. 9 conversion,
- :class:`~repro.core.matching.Matching` — many-to-many matchings,
- :func:`~repro.core.lic.lic_matching` — Algorithm 2 (centralised),
- :func:`~repro.core.lid.run_lid` / :func:`~repro.core.lid.solve_lid` —
  Algorithm 1 (distributed, on the event simulator),
- :func:`~repro.core.resilient_lid.run_resilient_lid` — Algorithm 1 on
  reliable channels with failure detection (crashes, partitions),
- :func:`~repro.core.fast_lid.lid_matching_fast` — Algorithm 1's
  round-batched fast engine (default channels, bit-identical results),
- :func:`~repro.core.sharded_lid.sharded_lid_matching` — the fast
  engine partitioned into per-shard wave loops with boundary
  reconciliation (``multiprocessing`` workers, optional numba),
- :mod:`~repro.core.analysis` — certificates and theorem bounds,
- :mod:`~repro.core.variants` — future-work variants (§7),
- :mod:`~repro.core.backend` — the ``"reference"``/``"fast"``/
  ``"sharded"`` execution selector over :mod:`~repro.core.fast`'s
  array-backed kernels.
"""

from repro.core.backend import BACKENDS, Backend, ShardedBackend, get_backend
from repro.core.dynamic_lid import DynamicLidHarness, DynamicLidNode
from repro.core.fast import (
    FastInstance,
    edge_weight_arrays,
    lic_matching_fast,
    satisfaction_profile_fast,
    satisfaction_weights_fast,
)
from repro.core.analysis import (
    approximation_ratio,
    greedy_certificate,
    theorem1_bound,
    theorem2_bound,
    theorem3_bound,
    weighted_blocking_edges,
)
from repro.core.fast_lid import FastLidResult, lid_matching_fast
from repro.core.sharded_lid import ShardedLidResult, sharded_lid_matching
from repro.core.lic import lic_matching, lic_matching_pool, solve_modified_bmatching
from repro.core.mixed import MixedRunResult, run_mixed_adoption
from repro.core.lid import LidNode, LidResult, run_lid, solve_lid
from repro.core.resilient_lid import (
    ResilientLidNode,
    ResilientLidResult,
    make_byzantine_resilient,
    run_resilient_lid,
)
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.satisfaction import (
    delta_full,
    delta_static,
    full_satisfaction,
    lemma1_bound,
    lemma1_worst_case,
    static_dynamic_split,
    static_satisfaction,
    total_satisfaction,
)
from repro.core.variants import alpha_weight_table, two_phase_lid
from repro.core.weights import WeightTable, satisfaction_weights

__all__ = [
    "BACKENDS",
    "Backend",
    "get_backend",
    "DynamicLidHarness",
    "FastInstance",
    "edge_weight_arrays",
    "lic_matching_fast",
    "satisfaction_profile_fast",
    "satisfaction_weights_fast",
    "DynamicLidNode",
    "PreferenceSystem",
    "Matching",
    "WeightTable",
    "satisfaction_weights",
    "lic_matching",
    "FastLidResult",
    "lid_matching_fast",
    "ShardedBackend",
    "ShardedLidResult",
    "sharded_lid_matching",
    "MixedRunResult",
    "run_mixed_adoption",
    "lic_matching_pool",
    "solve_modified_bmatching",
    "LidNode",
    "LidResult",
    "ResilientLidNode",
    "ResilientLidResult",
    "make_byzantine_resilient",
    "run_resilient_lid",
    "run_lid",
    "solve_lid",
    "delta_full",
    "delta_static",
    "full_satisfaction",
    "static_satisfaction",
    "static_dynamic_split",
    "total_satisfaction",
    "lemma1_bound",
    "lemma1_worst_case",
    "approximation_ratio",
    "greedy_certificate",
    "weighted_blocking_edges",
    "theorem1_bound",
    "theorem2_bound",
    "theorem3_bound",
    "alpha_weight_table",
    "two_phase_lid",
]
