"""Dynamic LID — a distributed protocol for churning overlays (§7).

The published Algorithm 1 is one-shot: it assumes a static graph and
static preference lists.  The conclusion asks whether "the same greedy
strategy ... can tackle" joins and leaves.  :mod:`repro.overlay.churn`
answers centrally (exact incremental repair); this module answers
*distributedly*: a message-passing protocol whose quiescent state is
always the greedy (LIC/LID) matching of the *current* overlay, and that
re-converges after each membership event through purely local
negotiation.

Protocol sketch
---------------
Each node keeps its private preference order over current neighbours
and derives its side of every eq.-9 weight locally
(``ΔS̄_i^j = (1 - R_i(j)/ℓ_i)/b_i``).  Weight halves are exchanged so
both endpoints agree on the symmetric key ``(ΔS̄_i^j + ΔS̄_j^i, i, j)``.

Messages:

- ``HELLO(δ)``   — introduce my weight half (start-up and joins),
- ``UPDATE(δ)``  — my weight half changed (my list length changed
  because a neighbour joined/left),
- ``PROP``       — I currently *want* you (you are among my best ``b``
  candidates given my locks),
- ``ACC`` / ``REJ`` — answer to a ``PROP``,
- ``RELEASE``    — drop our lock (I locked someone strictly better, or
  I answered your stale ``ACC``),
- ``BYE``        — I am leaving the overlay.

A node *wants* ``j`` when it has quota slack or ``j``'s key beats its
lightest locked partner; a mutual want locks the edge (the heavier
partner displaced by ``lock`` is released and renegotiates).  Wants are
discovered by proposing: a ``REJ`` parks the target in a ``refused``
set, which is cleared whenever the node's own state changes — the
standard device that lets either side of a *newly* blocking edge
re-open negotiation, while keeping message counts finite (every clear
is triggered by a lock/release/update, and locks strictly improve the
global sorted-key profile, which bounds the number of state changes).

Convergence
-----------
The greedy matching is the unique configuration with no *weighted
blocking edge* (see :mod:`repro.overlay.churn` for the uniqueness
argument), and it is exactly the quiescent states of this protocol:
quiescent means no ``PROP`` would be sent, i.e. no mutual want, i.e. no
blocking edge.  The test-suite verifies quiescence *and* equality with
the centralised LIC result after every event of randomised churn
sessions, under FIFO channels with arbitrary latency.  (FIFO is
required: a ``PROP`` must not overtake the ``RELEASE`` that precedes
it on the same channel.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.matching import Matching
from repro.distsim.network import LatencyModel, Network
from repro.distsim.node import ProtocolNode
from repro.distsim.scheduler import Simulator
from repro.utils.validation import ProtocolError

__all__ = ["DynamicLidNode", "DynamicLidHarness", "ChurnEventStats"]

HELLO = "HELLO"
UPDATE = "UPDATE"
PROP = "PROP"
ACC = "ACC"
REJ = "REJ"
RELEASE = "RELEASE"
BYE = "BYE"


class DynamicLidNode(ProtocolNode):
    """One participant of the dynamic greedy-matching protocol.

    Parameters
    ----------
    pref_order:
        This node's private preference order over its *current*
        neighbours (best first).  Mutated by joins/leaves through
        :meth:`insert_preference` / internal ``BYE`` handling.
    quota:
        Connection quota ``b_i`` (fixed).
    """

    def __init__(self, pref_order: Sequence[int], quota: int):
        super().__init__()
        self.pref_order: list[int] = list(pref_order)
        self.quota = int(quota)
        self.their_delta: dict[int, float] = {}
        self.locked: set[int] = set()
        self.outstanding: set[int] = set()
        self.refused: set[int] = set()
        self.leaving = False
        # statistics
        self.msg_counts: dict[str, int] = {}

    # -- local weight computation ---------------------------------------

    def my_delta(self, j: int) -> float:
        """My half of the eq.-9 weight for neighbour ``j`` (private)."""
        ell = len(self.pref_order)
        rank = self.pref_order.index(j)
        return (1.0 - rank / ell) / self.quota if self.quota else 0.0

    def key(self, j: int):
        """The shared strict-total-order key of edge ``(me, j)``."""
        w = self.my_delta(j) + self.their_delta[j]
        a, b = (self.node_id, j) if self.node_id < j else (j, self.node_id)
        return (w, a, b)

    def _known(self, j: int) -> bool:
        return j in self.their_delta and j in self.pref_order

    # -- protocol entry points --------------------------------------------

    def on_start(self) -> None:
        for j in self.pref_order:
            self._tell(j, HELLO, self.my_delta(j))

    def on_message(self, src: int, kind: str, payload) -> None:
        if self.leaving:
            return  # final BYEs already sent; ignore stragglers
        if kind == BYE:
            self._forget(src)
            self._broadcast_update()
            self._state_changed()
        elif kind == HELLO:
            if src not in self.pref_order:
                # joiner announced before our local insert: buffer is not
                # needed because the harness inserts before starting it
                raise ProtocolError(
                    f"{self.node_id} got HELLO from unranked {src}"
                )
            self.their_delta[src] = float(payload)
            self._state_changed()
        elif kind == UPDATE:
            if src in self.pref_order:
                self.their_delta[src] = float(payload)
                self.refused.discard(src)
                self._state_changed()
        elif kind == PROP:
            if not self._known(src):
                return  # cannot happen under FIFO (HELLO precedes PROP)
            self.refused.discard(src)
            if src in self.locked:
                # the peer proposing means it does NOT consider us locked
                # (its lock fell to a RELEASE of an older lock instance);
                # re-confirm so it can complete the handshake
                self._tell(src, ACC)
                return
            if self._wants(src):
                # a crossing proposal of ours doubles as the peer's ACC
                self.outstanding.discard(src)
                self._lock(src)
                self._tell(src, ACC)
                self._state_changed()
            else:
                self._tell(src, REJ)
        elif kind == ACC:
            if src in self.locked:
                self.outstanding.discard(src)
                return
            if src in self.outstanding:
                self.outstanding.discard(src)
                if self._known(src) and self._wants(src):
                    self._lock(src)
                    self._state_changed()
                else:
                    self._tell(src, RELEASE)
            else:
                # stale ACC (answers a proposal consumed by an earlier
                # lock instance): refuse — locking here without a live
                # handshake is exactly what creates phantom half-locks
                self._tell(src, RELEASE)
        elif kind == REJ:
            self.outstanding.discard(src)
            self.refused.add(src)
            self._re_evaluate()
        elif kind == RELEASE:
            if src in self.locked:
                self.locked.discard(src)
                self._state_changed()
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"dynamic LID got unknown kind {kind!r}")

    # -- churn API ---------------------------------------------------------

    def start_leave(self) -> None:
        """Leave the overlay: release partners, say BYE, stop."""
        self.leaving = True
        for j in list(self.locked):
            self._tell(j, RELEASE)
        for j in self.pref_order:
            self._tell(j, BYE)
        self.locked.clear()
        self.outstanding.clear()
        self.terminate()

    def insert_preference(self, v: int, position: int) -> None:
        """Application callback: rank new neighbour ``v`` at ``position``.

        Called by the harness when ``v`` joins knowing this node.  The
        list-length change re-scales all our weight halves, so an
        ``UPDATE`` goes to every existing neighbour and a ``HELLO`` to
        the newcomer.
        """
        if v in self.pref_order:
            raise ProtocolError(f"{self.node_id} already ranks {v}")
        position = max(0, min(position, len(self.pref_order)))
        self.pref_order.insert(position, v)
        self.refused.clear()
        self._broadcast_update(exclude=v)
        self._tell(v, HELLO, self.my_delta(v))

    # -- internals ----------------------------------------------------------

    def _tell(self, dst: int, kind: str, payload=None) -> None:
        self.msg_counts[kind] = self.msg_counts.get(kind, 0) + 1
        self.send(dst, kind, payload)

    def _forget(self, v: int) -> None:
        if v in self.pref_order:
            self.pref_order.remove(v)
        self.their_delta.pop(v, None)
        self.locked.discard(v)
        self.outstanding.discard(v)
        self.refused.discard(v)

    def _broadcast_update(self, exclude: Optional[int] = None) -> None:
        for j in self.pref_order:
            if j != exclude:
                self._tell(j, UPDATE, self.my_delta(j))

    def _wants(self, j: int) -> bool:
        if self.quota == 0 or j in self.locked or not self._known(j):
            return False
        if len(self.locked) < self.quota:
            return True
        worst = min(self.locked, key=self.key)
        return self.key(j) > self.key(worst)

    def _lock(self, j: int) -> None:
        if len(self.locked) >= self.quota:
            worst = min(self.locked, key=self.key)
            self.locked.discard(worst)
            self._tell(worst, RELEASE)
        self.locked.add(j)

    def _state_changed(self) -> None:
        """My lock-set or weight view changed: retry and renegotiate."""
        self.refused.clear()
        self._re_evaluate()

    def _re_evaluate(self) -> None:
        """Propose to the best candidates my quota still justifies."""
        if self.leaving or self.quota == 0:
            return
        candidates = sorted(
            (j for j in self.pref_order if self._known(j)),
            key=self.key,
            reverse=True,
        )
        chosen: list[int] = []
        for c in candidates:
            if len(chosen) >= self.quota:
                break
            if c in self.locked:
                chosen.append(c)
            elif c not in self.refused:
                chosen.append(c)
        for c in chosen:
            if c not in self.locked and c not in self.outstanding:
                self.outstanding.add(c)
                self._tell(c, PROP)


@dataclass
class ChurnEventStats:
    """Per-event accounting returned by the harness."""

    event: str
    node: int
    messages: int
    events_processed: int
    virtual_time: float


class DynamicLidHarness:
    """Drives :class:`DynamicLidNode` populations through churn sessions.

    The harness owns the simulator/network pair, injects joins and
    leaves, runs the system to quiescence after each event, and exposes
    the mutual-lock matching (in stable *external* ids) for
    verification.

    Parameters
    ----------
    pref_orders:
        Initial preference order per node (index = node id).
    quotas:
        Quota per node.
    latency, seed:
        Passed to the network (FIFO is forced — see module docstring).
    capacity:
        Maximum total nodes over the session (headroom for joins).
    """

    def __init__(
        self,
        pref_orders: Sequence[Sequence[int]],
        quotas: Sequence[int],
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        capacity: Optional[int] = None,
    ):
        n = len(pref_orders)
        if capacity is None:
            capacity = 4 * n + 16
        links = set()
        for i, order in enumerate(pref_orders):
            for j in order:
                links.add((min(i, j), max(i, j)))
        self.network = Network(
            capacity, latency=latency, fifo=True, links=links, seed=seed
        )
        self.nodes: list[DynamicLidNode] = [
            DynamicLidNode(order, q) for order, q in zip(pref_orders, quotas)
        ]
        self.sim = Simulator(self.network, self.nodes)
        self.alive: set[int] = set(range(n))
        self._msg_mark = 0
        self._evt_mark = 0

    # -- session control ----------------------------------------------------

    def run_to_quiescence(self, label: str = "init", node: int = -1) -> ChurnEventStats:
        """Drain the event queue; returns accounting since the last call."""
        self.sim.run(max_events=2_000_000)
        sent = self.sim.metrics.total_sent
        events = self.sim.metrics.events
        stats = ChurnEventStats(
            event=label,
            node=node,
            messages=sent - self._msg_mark,
            events_processed=events - self._evt_mark,
            virtual_time=self.sim.now,
        )
        self._msg_mark = sent
        self._evt_mark = events
        return stats

    def leave(self, node_id: int) -> ChurnEventStats:
        """Node ``node_id`` leaves; run the repair to quiescence."""
        if node_id not in self.alive:
            raise KeyError(f"node {node_id} is not alive")
        self.alive.discard(node_id)
        self.nodes[node_id].start_leave()
        return self.run_to_quiescence("leave", node_id)

    def join(
        self,
        pref_order: Sequence[int],
        quota: int,
        positions: dict[int, int],
    ) -> tuple[int, ChurnEventStats]:
        """A new node joins knowing ``pref_order`` (alive node ids).

        ``positions[j]`` is where neighbour ``j`` privately ranks the
        newcomer in its own list (the application-layer metric answer).
        """
        unknown = set(pref_order) - self.alive
        if unknown:
            raise KeyError(f"unknown neighbours {sorted(unknown)}")
        if set(positions) != set(pref_order):
            raise ValueError("positions must cover exactly the neighbours")
        node = DynamicLidNode(pref_order, quota)
        if len(self.nodes) + 1 > self.network.n:
            self.network.grow(2 * self.network.n)
        new_id = self.sim.add_node(node, start=False)
        self.nodes.append(node)  # Simulator copies the node list at init
        assert len(self.nodes) == new_id + 1
        self.alive.add(new_id)
        for j in pref_order:
            self.network.add_link(new_id, j)
            self.nodes[j].insert_preference(new_id, positions[j])
        node.on_start()
        return new_id, self.run_to_quiescence("join", new_id)

    # -- inspection --------------------------------------------------------

    def matching(self) -> Matching:
        """Mutual-lock matching over the full id space (validated symmetric)."""
        m = Matching(len(self.nodes))
        for i in self.alive:
            for j in self.nodes[i].locked:
                if j not in self.alive or i not in self.nodes[j].locked:
                    raise ProtocolError(f"asymmetric lock {i} ~ {j} at quiescence")
                if i < j:
                    m.add(i, j)
        return m

    def half_locks(self) -> list[tuple[int, int]]:
        """Asymmetric locks (must be empty at quiescence)."""
        out = []
        for i in self.alive:
            for j in self.nodes[i].locked:
                if j not in self.alive or i not in self.nodes[j].locked:
                    out.append((i, j))
        return out
