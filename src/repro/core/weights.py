"""Edge weights for the weighted-matching conversion (Section 4, eq. 9).

The modified b-matching problem is converted to a many-to-many maximum
weighted matching by giving each edge ``(i, j)`` the symmetric weight::

    w(i, j) = ΔS̄_i^j + ΔS̄_j^i
            = (1 - R_i(j)/ℓ_i) / b_i  +  (1 - R_j(i)/ℓ_j) / b_j

i.e. the *static* satisfaction gleaned by the two endpoints for that
connection.  Symmetry is what makes Lemma 5's no-communication-cycle
argument work, and thereby guarantees LID's termination.

The paper assumes **unique** edge weights so greedy algorithms can
recognise locally heaviest edges unambiguously, breaking ties "using
node identities".  :class:`WeightTable` realises this with a total-order
*key* ``(w(i,j), min(i,j), max(i,j))``: two edges compare first by
weight, then lexicographically by canonical endpoint ids.  All greedy
logic (LIC pool selection, LID weight lists) compares keys, never raw
weights, so the order is a strict total order shared by every node — the
exact device the paper prescribes.

:class:`WeightTable` is algorithm-agnostic: besides eq.-9 tables (built
via :func:`satisfaction_weights`), arbitrary positive weights can be
loaded with :meth:`WeightTable.from_edge_weights`, which is how the pure
many-to-many maximum-weighted-matching experiments (Theorem 2) are run.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.core.preferences import PreferenceSystem
from repro.core.satisfaction import delta_static
from repro.utils.validation import InvalidInstanceError

__all__ = ["WeightTable", "satisfaction_weights", "edge_key"]

Edge = tuple[int, int]
Key = tuple[float, int, int]


def _canon(i: int, j: int) -> Edge:
    """Canonical undirected-edge representation ``(min, max)``."""
    return (i, j) if i < j else (j, i)


def edge_key(weight: float, i: int, j: int) -> Key:
    """Total-order key of an edge: weight first, then canonical node ids."""
    a, b = _canon(i, j)
    return (weight, a, b)


class WeightTable:
    """Symmetric edge-weight table with a strict total order on edges.

    Parameters
    ----------
    weights:
        Mapping from canonical edges ``(i, j)`` with ``i < j`` to positive
        weights.  (The satisfaction weights of eq. 9 are always positive
        because ``R_i(j) < ℓ_i``.)
    n:
        Number of nodes; edges must stay within ``0..n-1``.
    """

    __slots__ = ("_w", "_n", "_adj", "_sorted")

    def __init__(self, weights: Mapping[Edge, float], n: int):
        self._n = n
        self._w: dict[Edge, float] = {}
        for (i, j), w in weights.items():
            if i == j:
                raise InvalidInstanceError(f"self-loop ({i},{j}) not allowed")
            if not (0 <= i < n and 0 <= j < n):
                raise InvalidInstanceError(f"edge ({i},{j}) outside node range 0..{n-1}")
            e = _canon(i, j)
            if e in self._w:
                raise InvalidInstanceError(f"duplicate edge {e}")
            w = float(w)
            if w <= 0.0:
                raise InvalidInstanceError(
                    f"edge {e} has non-positive weight {w}; greedy analysis "
                    "requires positive weights"
                )
            self._w[e] = w
        self._adj: list[list[int]] | None = None
        self._sorted: list[Edge] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_weights(
        cls, edges: Iterable[tuple[int, int, float]], n: int
    ) -> "WeightTable":
        """Build from ``(i, j, w)`` triples (arbitrary positive weights)."""
        weights: dict[Edge, float] = {}
        for i, j, w in edges:
            e = _canon(i, j)
            if e in weights:
                raise InvalidInstanceError(f"duplicate edge {e}")
            weights[e] = w
        return cls(weights, n)

    @classmethod
    def from_trusted(cls, weights: dict[Edge, float], n: int) -> "WeightTable":
        """Adopt an already-validated weight dict without the per-edge checks.

        The fast backend (:mod:`repro.core.fast`) and the churn weight
        cache produce canonical, duplicate-free, positive-weight dicts by
        construction; re-validating them costs O(m) Python per call.  The
        dict is adopted as-is — callers must guarantee canonical ``i < j``
        keys in ``0..n-1`` and positive weights.
        """
        out = cls.__new__(cls)
        out._n = n
        out._w = weights
        out._adj = None
        out._sorted = None
        return out

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._w)

    def weight(self, i: int, j: int) -> float:
        """Weight ``w(i, j)`` (symmetric)."""
        return self._w[_canon(i, j)]

    def key(self, i: int, j: int) -> Key:
        """Strict-total-order key of edge ``(i, j)``."""
        a, b = _canon(i, j)
        return (self._w[(a, b)], a, b)

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the table contains edge ``(i, j)``."""
        return _canon(i, j) in self._w

    def edges(self) -> Iterable[Edge]:
        """All canonical edges (unordered)."""
        return self._w.keys()

    def items(self) -> Iterable[tuple[Edge, float]]:
        """All ``(edge, weight)`` pairs."""
        return self._w.items()

    def total_weight(self, edges: Iterable[Edge]) -> float:
        """Sum of weights over an edge collection."""
        return sum(self._w[_canon(i, j)] for i, j in edges)

    # ------------------------------------------------------------------
    # derived structures (cached)
    # ------------------------------------------------------------------

    def _build_adjacency(self) -> list[list[int]]:
        adj: list[list[int]] = [[] for _ in range(self._n)]
        for i, j in self._w:
            adj[i].append(j)
            adj[j].append(i)
        return adj

    def neighbors(self, i: int) -> list[int]:
        """Neighbours of ``i`` in the weight graph (unsorted)."""
        if self._adj is None:
            self._adj = self._build_adjacency()
        return self._adj[i]

    def weight_list(self, i: int) -> list[int]:
        """Node ``i``'s *weight list*: neighbours by decreasing edge key.

        This is the auxiliary list every node keeps in LID ("every node
        keeps these newly formed weights of its adjacent edges in a
        weight list") — PROP messages are sent in exactly this order.
        """
        return sorted(self.neighbors(i), key=lambda j: self.key(i, j), reverse=True)

    def sorted_edges(self) -> list[Edge]:
        """All edges by strictly decreasing key (heaviest first)."""
        if self._sorted is None:
            self._sorted = sorted(self._w, key=lambda e: self.key(*e), reverse=True)
        return list(self._sorted)

    def prefers(self, i: int, j: int, k: int) -> bool:
        """Whether node ``i``'s edge to ``j`` outranks its edge to ``k``."""
        return self.key(i, j) > self.key(i, k)

    def __repr__(self) -> str:
        return f"WeightTable(n={self._n}, m={self.m})"


def satisfaction_weights(ps: PreferenceSystem, exact: bool = False) -> WeightTable:
    """Build the eq.-9 weight table for a preference system.

    Parameters
    ----------
    exact:
        When ``True``, compute each weight with :class:`fractions.Fraction`
        before converting to float.  The rational value is exact; rounding
        to float happens once, which removes any dependence on summation
        order.  Useful in verification tests; the default float path is
        ~3x faster and adequate everywhere else (the total-order key makes
        all greedy decisions robust to float-equal weights).
    """
    weights: dict[Edge, float] = {}
    for i, j in ps.edges():
        if exact:
            w = Fraction(ps.list_length(i) - ps.rank(i, j), ps.list_length(i) * ps.quota(i)) + Fraction(
                ps.list_length(j) - ps.rank(j, i), ps.list_length(j) * ps.quota(j)
            )
            weights[(i, j)] = float(w)
        else:
            weights[(i, j)] = delta_static(ps, i, j) + delta_static(ps, j, i)
    return WeightTable(weights, ps.n)
