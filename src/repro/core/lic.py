"""LIC — Local Information-based Centralised algorithm (Algorithm 2).

LIC repeatedly selects a *locally heaviest* edge from a shrinking pool
``P``: an edge ``(a, b)`` whose (total-order) key beats every other pool
edge incident to ``a`` or ``b``.  Each node carries a counter of
remaining capacity; when a node's counter hits zero all its remaining
pool edges are discarded.

The paper (Theorem 2) proves LIC is a ½-approximation of the optimal
many-to-many maximum weighted matching, and (Lemma 6 + Lemma 4) that it
selects exactly the same edge set as the distributed LID — which is how
LID's ratio is established.

Note on the pseudocode: Algorithm 2 line 2 initialises
``counter(v) := d_v`` (the degree).  Taken literally this would select
*every* edge, because no counter could reach zero before its node ran
out of incident pool edges.  Section 2 states capacities "in this case
are the connection quotas ``b_i``", so we initialise
``counter(v) := b_v`` — the evident intent (and the only reading under
which Lemma 6 and Theorem 3 hold).

Two implementations are provided:

- :func:`lic_matching` — the O(m log m) *sorted-scan* execution: process
  edges by decreasing key and select when both endpoints have residual
  capacity.  The heaviest pool edge is always locally heaviest, so this
  is a valid LIC execution.
- :func:`lic_matching_pool` — the faithful pool-based execution with a
  pluggable choice among *all* currently locally heaviest edges.  The
  paper's lemmas imply the outcome is independent of the choice
  (confluence); tests verify this empirically by comparing strategies.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable, satisfaction_weights

__all__ = [
    "lic_matching",
    "lic_matching_pool",
    "solve_modified_bmatching",
    "locally_heaviest_edges",
]

Edge = tuple[int, int]


def lic_matching(wt: WeightTable, quotas: Sequence[int]) -> Matching:
    """Run LIC via the sorted-scan execution.

    Parameters
    ----------
    wt:
        Edge weights (any positive weights; eq.-9 tables for the
        satisfaction pipeline).
    quotas:
        Per-node capacities ``b_i`` (``quotas[i]`` may exceed the degree;
        the scan naturally never selects more than ``deg(i)`` edges).

    Returns
    -------
    Matching
        The greedy many-to-many matching.  By Theorem 2 its weight is at
        least half the optimum.
    """
    n = wt.n
    if len(quotas) != n:
        raise ValueError(f"quotas length {len(quotas)} != n={n}")
    residual = [int(q) for q in quotas]
    matching = Matching(n)
    for a, b in wt.sorted_edges():
        if residual[a] > 0 and residual[b] > 0:
            matching.add(a, b)
            residual[a] -= 1
            residual[b] -= 1
    return matching


def locally_heaviest_edges(
    wt: WeightTable,
    pool: set[Edge],
    incident: list[set[Edge]],
) -> list[Edge]:
    """All pool edges that are locally heaviest (eq. 3 over the pool).

    ``incident[v]`` must hold the pool edges incident to ``v``.  An edge
    is locally heaviest when its key beats the key of every other pool
    edge sharing an endpoint; with the strict total order, at most one
    per neighbourhood qualifies, but distinct neighbourhoods can each
    contribute one.
    """
    out = []
    for e in pool:
        a, b = e
        k = wt.key(a, b)
        best = True
        for f in incident[a]:
            if f != e and wt.key(*f) > k:
                best = False
                break
        if best:
            for f in incident[b]:
                if f != e and wt.key(*f) > k:
                    best = False
                    break
        if best:
            out.append(e)
    return out


def lic_matching_pool(
    wt: WeightTable,
    quotas: Sequence[int],
    strategy: Literal["heaviest", "lightest", "random", "first"] = "random",
    rng: np.random.Generator | None = None,
) -> Matching:
    """Run LIC via the faithful pool-based execution (Algorithm 2).

    At each step the set of locally heaviest pool edges is computed and
    one is selected according to ``strategy``:

    - ``heaviest``: the globally heaviest (replicates the sorted scan),
    - ``lightest``: the *lightest* locally heaviest edge — the adversarial
      order for confluence testing,
    - ``random``: uniform among locally heaviest edges (needs ``rng``),
    - ``first``: lowest canonical edge id.

    This is O(m² · Δ) and intended for correctness testing, not scale.
    """
    n = wt.n
    if len(quotas) != n:
        raise ValueError(f"quotas length {len(quotas)} != n={n}")
    if strategy == "random" and rng is None:
        rng = np.random.default_rng(0)

    counter = [int(q) for q in quotas]
    pool: set[Edge] = set(wt.edges())
    incident: list[set[Edge]] = [set() for _ in range(n)]
    for e in pool:
        incident[e[0]].add(e)
        incident[e[1]].add(e)

    matching = Matching(n)

    def drop(e: Edge) -> None:
        pool.discard(e)
        incident[e[0]].discard(e)
        incident[e[1]].discard(e)

    while pool:
        candidates = locally_heaviest_edges(wt, pool, incident)
        assert candidates, "non-empty pool must contain a locally heaviest edge"
        if strategy == "heaviest":
            e = max(candidates, key=lambda f: wt.key(*f))
        elif strategy == "lightest":
            e = min(candidates, key=lambda f: wt.key(*f))
        elif strategy == "first":
            e = min(candidates)
        elif strategy == "random":
            assert rng is not None
            e = candidates[int(rng.integers(len(candidates)))]
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        a, b = e
        matching.add(a, b)
        drop(e)
        counter[a] -= 1
        counter[b] -= 1
        if counter[a] == 0:
            for f in list(incident[a]):
                drop(f)
        if counter[b] == 0:
            for f in list(incident[b]):
                drop(f)
    return matching


def solve_modified_bmatching(
    ps: PreferenceSystem, backend: str = "reference"
) -> tuple[Matching, WeightTable]:
    """End-to-end LIC pipeline for a preference system.

    Builds the eq.-9 weight table and runs the sorted-scan LIC.  By
    Theorem 3 (via LID ≡ LIC) the result's *full* satisfaction is a
    ¼(1 + 1/b_max)-approximation of the maximising-satisfaction
    b-matching optimum.

    Parameters
    ----------
    backend:
        ``"reference"`` (scalar, default) or ``"fast"`` (array-backed,
        :mod:`repro.core.fast`) — identical results either way; see
        ``docs/performance.md``.
    """
    if backend == "fast":
        from repro.core.fast import FastInstance, lic_matching_fast

        fi = FastInstance.from_preference_system(ps)
        return lic_matching_fast(fi), fi.weight_table()
    if backend != "reference":
        raise ValueError(
            f"unknown backend {backend!r}; choose from ['fast', 'reference']"
        )
    wt = satisfaction_weights(ps)
    return lic_matching(wt, ps.quotas), wt
