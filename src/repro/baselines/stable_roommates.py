"""Irving's stable roommates algorithm (exact, unit quotas).

The stable fixtures problem restricted to ``b_i = 1`` is the classic
stable roommates problem (with incomplete lists, "SRI", since overlay
knowledge graphs are not complete).  This module implements Irving's
two-phase algorithm:

- **Phase 1** — proposal round: everyone proposes down their list; a
  receiver holds its best proposer and rejects the rest; afterwards
  each holder's list is truncated below its held proposer.  All
  rejections/truncations are *symmetric deletions* of pairs.
- **Phase 2** — rotation elimination: while some reduced list has more
  than one entry, expose a rotation (the ``second``/``last`` walk) and
  eliminate it; lists shrink strictly, so this terminates.

Outcome for complete even instances is Irving's classic dichotomy:
either all lists end as singletons (the unique content of a stable
matching) or some list empties (no stable matching exists).  For
*incomplete* lists the phase-2-empty case is reported as *uncertain*
(SRI needs a more careful argument), and every positive answer is
certified with the independent blocking-pair checker before being
returned — the caller (:func:`repro.baselines.stable_fixtures.
stable_fixtures_matching`) falls back to its hybrid whenever this
solver is not certain.

References: R.W. Irving, *An efficient algorithm for the stable
roommates problem*, J. Algorithms 1985; Gusfield & Irving, *The Stable
Marriage Problem*, 1989 (ch. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.baselines.verify import is_stable
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem

__all__ = ["StableRoommatesResult", "stable_roommates"]


@dataclass
class StableRoommatesResult:
    """Answer of the exact solver.

    ``certain`` distinguishes proven answers (complete-case dichotomy or
    verified matchings) from the SRI phase-2-empty case where this
    implementation abstains.
    """

    matching: Optional[Matching]
    exists: Optional[bool]
    certain: bool
    phase: Literal["phase1", "phase2", "verified", "abstain"]


class _Table:
    """Reduced preference lists with symmetric deletion."""

    def __init__(self, ps: PreferenceSystem):
        self.lists: list[list[int]] = [list(ps.preference_list(i)) for i in ps.nodes()]
        self.rank = [
            {j: r for r, j in enumerate(lst)} for lst in self.lists
        ]

    def delete(self, a: int, b: int) -> None:
        """Symmetric deletion of the pair ``{a, b}`` (if present)."""
        if b in self.rank[a]:
            self.lists[a].remove(b)
            del self.rank[a][b]
        if a in self.rank[b]:
            self.lists[b].remove(a)
            del self.rank[b][a]

    def first(self, x: int) -> int:
        return self.lists[x][0]

    def second(self, x: int) -> int:
        return self.lists[x][1]

    def last(self, x: int) -> int:
        return self.lists[x][-1]

    def prefers(self, y: int, a: int, b: int) -> bool:
        """Whether ``y`` prefers ``a`` to ``b`` (both must be in y's list)."""
        return self.rank[y][a] < self.rank[y][b]

    def truncate_after(self, y: int, x: int) -> None:
        """Delete from ``y``'s list everyone ranked strictly below ``x``.

        Uses the *current* list position (``rank`` keeps original
        indices, which remain valid for order comparisons but not as
        positions once entries have been deleted).
        """
        pos = self.lists[y].index(x)
        for z in list(self.lists[y][pos + 1 :]):
            self.delete(y, z)


def _phase1(table: _Table, n: int) -> None:
    """Proposal round; mutates the table to the phase-1 reduction."""
    held_by: list[Optional[int]] = [None] * n  # held_by[y] = proposer y holds
    holds_me: list[Optional[int]] = [None] * n  # who holds x's proposal
    stack = [x for x in range(n) if table.lists[x]]
    while stack:
        x = stack.pop()
        if holds_me[x] is not None:
            continue
        while holds_me[x] is None and table.lists[x]:
            y = table.first(x)
            current = held_by[y]
            if current is None:
                held_by[y] = x
                holds_me[x] = y
            elif table.prefers(y, x, current):
                held_by[y] = x
                holds_me[x] = y
                holds_me[current] = None
                table.delete(current, y)
                stack.append(current)
            else:
                table.delete(x, y)
    # truncation: y keeps nobody worse than its held proposer
    for y in range(n):
        x = held_by[y]
        if x is not None and x in table.rank[y]:
            table.truncate_after(y, x)


def _find_rotation(table: _Table, start: int) -> Optional[list[tuple[int, int]]]:
    """Expose a rotation by the second/last walk from ``start``.

    Returns the rotation as pairs ``(a_i, b_i)`` with ``b_i = first(a_i)``,
    or ``None`` if the walk hits a structural surprise (possible only in
    the incomplete-list case; the caller then abstains).
    """
    xs: list[int] = [start]
    pos: dict[int, int] = {start: 0}
    while True:
        x = xs[-1]
        if len(table.lists[x]) < 2:
            return None  # walk left the >=2 region: abstain
        y = table.second(x)
        if not table.lists[y]:
            return None
        x_next = table.last(y)
        if x_next in pos:
            cycle = xs[pos[x_next] :]
            return [(a, table.first(a)) for a in cycle]
        pos[x_next] = len(xs)
        xs.append(x_next)


def _eliminate(table: _Table, rotation: list[tuple[int, int]]) -> None:
    """Eliminate a rotation: each ``b_{i+1}`` keeps nothing below ``a_i``."""
    r = len(rotation)
    for i in range(r):
        a_i = rotation[i][0]
        b_next = rotation[(i + 1) % r][1]
        # b_{i+1} now holds a_i's proposal: reject everyone worse
        if a_i in table.rank[b_next]:
            table.truncate_after(b_next, a_i)
        # note: this deletes (a_{i+1}, b_{i+1}) because a_{i+1} = last(b_{i+1})


def stable_roommates(ps: PreferenceSystem) -> StableRoommatesResult:
    """Run Irving's algorithm on a unit-quota instance.

    Raises if any quota exceeds 1.  See the module docstring for the
    completeness guarantees; every returned matching is verified stable.
    """
    for i in ps.nodes():
        if ps.quota(i) > 1:
            raise ValueError(
                f"stable_roommates needs unit quotas, node {i} has b={ps.quota(i)}"
            )
    n = ps.n
    complete = all(ps.degree(i) == n - 1 for i in ps.nodes())

    table = _Table(ps)
    _phase1(table, n)
    emptied_in_phase1 = [x for x in range(n) if not table.lists[x] and ps.degree(x) > 0]
    if complete and emptied_in_phase1:
        # complete case: somebody rejected by everyone -> no stable matching
        return StableRoommatesResult(None, False, True, "phase1")

    # phase 2: eliminate rotations until all lists are <= 1
    empty_before = {x for x in range(n) if not table.lists[x]}
    guard = 0
    while True:
        guard += 1
        if guard > n * n + 10:  # pragma: no cover - safety valve
            return StableRoommatesResult(None, None, False, "abstain")
        over = [x for x in range(n) if len(table.lists[x]) > 1]
        if not over:
            break
        rotation = _find_rotation(table, over[0])
        if rotation is None:
            return StableRoommatesResult(None, None, False, "abstain")
        _eliminate(table, rotation)
        newly_empty = [
            x
            for x in range(n)
            if not table.lists[x] and x not in empty_before and ps.degree(x) > 0
        ]
        if newly_empty:
            if complete:
                return StableRoommatesResult(None, False, True, "phase2")
            # SRI: a list emptied during phase 2 — Irving's dichotomy
            # needs the complete-case argument; abstain rather than guess
            return StableRoommatesResult(None, None, False, "abstain")

    # build the matching from the singleton lists
    matching = Matching(n)
    for x in range(n):
        if table.lists[x]:
            y = table.first(x)
            if not table.lists[y] or table.first(y) != x:
                return StableRoommatesResult(None, None, False, "abstain")
            if x < y:
                matching.add(x, y)
    if is_stable(ps, matching):
        return StableRoommatesResult(matching, True, True, "verified")
    return StableRoommatesResult(None, None, False, "abstain")
