"""Exact solvers — the OPT the paper's ratios are measured against.

The paper's theorems compare against optima whose existence is argued
but never computed.  To *measure* approximation ratios (experiments T1,
T2, F3) we need the true optima:

- :func:`max_weight_bmatching_milp` — exact many-to-many maximum weight
  matching (simple b-matching) as a 0/1 integer program solved by
  HiGHS through :func:`scipy.optimize.milp`.  The b-matching polytope
  is not integral in general (odd-cycle configurations), so an LP
  relaxation would not do; binary integrality is required.
- :func:`max_satisfaction_bmatching_milp` — exact *maximising
  satisfaction* b-matching (the paper's original objective, eq. 1,
  including the execution-dependent dynamic term).  The objective
  decomposes as ``w(M) + Σ_i g_i(c_i)`` where ``g_i(c) =
  c(c-1)/(2 b_i ℓ_i)`` depends only on the connection *count* ``c_i``;
  the count term is linearised exactly with one-hot count-selector
  binaries ``z_{i,c}``.
- :func:`max_weight_bmatching_gadget` — an independent exact method:
  the classical node-splitting reduction of simple b-matching to 1–1
  maximum weight matching (solved with networkx's blossom
  implementation).  Used as a cross-check of the MILP on small
  instances; pure-Python blossom is too slow beyond that.
- :func:`brute_force_bmatching` — exhaustive search over edge subsets
  for tiny instances; the ground truth both exact methods are tested
  against.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Optional, Sequence

import numpy as np
import networkx as nx
from scipy import sparse
from scipy.optimize import LinearConstraint, milp

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable, satisfaction_weights

__all__ = [
    "max_weight_bmatching_milp",
    "max_satisfaction_bmatching_milp",
    "max_weight_bmatching_gadget",
    "brute_force_bmatching",
    "optimal_weight",
    "optimal_satisfaction",
]

Edge = tuple[int, int]


def _degree_constraints(
    edges: Sequence[Edge], n: int, n_extra: int = 0
) -> sparse.csc_matrix:
    """Sparse node-incidence matrix A with A[v, e] = 1 iff v ∈ e."""
    rows, cols = [], []
    for idx, (i, j) in enumerate(edges):
        rows.extend((i, j))
        cols.extend((idx, idx))
    data = np.ones(len(rows))
    return sparse.csc_matrix(
        (data, (rows, cols)), shape=(n, len(edges) + n_extra)
    )


def max_weight_bmatching_milp(wt: WeightTable, quotas: Sequence[int]) -> Matching:
    """Exact maximum-weight simple b-matching via 0/1 integer programming.

    maximise    Σ_e w_e x_e
    subject to  Σ_{e ∋ v} x_e ≤ b_v   for every node v
                x_e ∈ {0, 1}
    """
    edges = list(wt.edges())
    n = wt.n
    if not edges:
        return Matching(n)
    w = np.array([wt.weight(i, j) for i, j in edges])
    A = _degree_constraints(edges, n)
    constraint = LinearConstraint(A, lb=0, ub=np.asarray(quotas, dtype=float))
    res = milp(
        c=-w,  # milp minimises
        constraints=[constraint],
        integrality=np.ones(len(edges)),
        bounds=(0, 1),
    )
    if not res.success:  # pragma: no cover - HiGHS is reliable on these
        raise RuntimeError(f"MILP failed: {res.message}")
    chosen = [e for e, x in zip(edges, res.x) if x > 0.5]
    return Matching(n, chosen)


def max_satisfaction_bmatching_milp(ps: PreferenceSystem) -> Matching:
    """Exact maximising-satisfaction b-matching (the paper's eq.-1 objective).

    Uses the decomposition ``Σ_i S_i = w(M) + Σ_i g_i(c_i)`` with
    ``w`` the eq.-9 weights and ``g_i(c) = c(c-1)/(2 b_i ℓ_i)``; the
    count term is encoded with one-hot binaries ``z_{i,c}``:

    - ``Σ_c z_{i,c} = 1``
    - ``Σ_c c · z_{i,c} - Σ_{e ∋ i} x_e = 0``
    - objective ``+ Σ_{i,c} g_i(c) z_{i,c}``

    The quota constraint is implicit in ``c ≤ b_i`` of the selector.
    """
    wt = satisfaction_weights(ps)
    edges = list(wt.edges())
    n = ps.n
    m = len(edges)
    if m == 0:
        return Matching(n)

    # variable layout: x_e (m), then z_{i,c} blocks
    z_offsets: list[int] = []
    z_counts: list[int] = []
    pos = m
    for i in range(n):
        z_offsets.append(pos)
        z_counts.append(ps.quota(i) + 1)  # c ∈ 0..b_i
        pos += ps.quota(i) + 1
    nvar = pos

    obj = np.zeros(nvar)
    for idx, (i, j) in enumerate(edges):
        obj[idx] = wt.weight(i, j)
    for i in range(n):
        b, ell = ps.quota(i), ps.list_length(i)
        for c in range(z_counts[i]):
            g = c * (c - 1) / (2.0 * b * ell) if b else 0.0
            obj[z_offsets[i] + c] = g

    rows, cols, data, lbs, ubs = [], [], [], [], []
    row = 0
    # one-hot: Σ_c z_{i,c} = 1
    for i in range(n):
        for c in range(z_counts[i]):
            rows.append(row)
            cols.append(z_offsets[i] + c)
            data.append(1.0)
        lbs.append(1.0)
        ubs.append(1.0)
        row += 1
    # count link: Σ_c c z_{i,c} - Σ_{e∋i} x_e = 0
    incident: list[list[int]] = [[] for _ in range(n)]
    for idx, (i, j) in enumerate(edges):
        incident[i].append(idx)
        incident[j].append(idx)
    for i in range(n):
        for c in range(z_counts[i]):
            if c:
                rows.append(row)
                cols.append(z_offsets[i] + c)
                data.append(float(c))
        for idx in incident[i]:
            rows.append(row)
            cols.append(idx)
            data.append(-1.0)
        lbs.append(0.0)
        ubs.append(0.0)
        row += 1

    A = sparse.csc_matrix((data, (rows, cols)), shape=(row, nvar))
    res = milp(
        c=-obj,
        constraints=[LinearConstraint(A, lb=np.array(lbs), ub=np.array(ubs))],
        integrality=np.ones(nvar),
        bounds=(0, 1),
    )
    if not res.success:  # pragma: no cover
        raise RuntimeError(f"MILP failed: {res.message}")
    chosen = [e for e, x in zip(edges, res.x[:m]) if x > 0.5]
    matching = Matching(n, chosen)
    matching.validate(ps)
    return matching


def max_weight_bmatching_gadget(
    wt: WeightTable, quotas: Sequence[int], engine: str = "blossom"
) -> Matching:
    """Exact b-matching via node-splitting reduction to 1–1 matching.

    For each node ``v`` create copies ``v_1..v_{b_v}``; for each edge
    ``e = (i, j)`` of weight ``w_e`` create gadget vertices ``u_e, v_e``
    with edges::

        i_k — u_e   (weight w_e, all copies k)
        u_e — v_e   (weight w_e)
        v_e — j_l   (weight w_e, all copies l)

    In a maximum-weight matching of the gadget graph each edge gadget
    contributes ``w_e`` if unused (via ``u_e—v_e``) and ``2 w_e`` if used
    (both outer edges), so the optimum equals ``Σ_e w_e + OPT_bmatching``.
    Edge ``e`` is read off as used when *both* outer sides are matched.

    ``engine`` selects the 1–1 matcher: ``"blossom"`` (default) uses the
    in-tree implementation (:mod:`repro.baselines.blossom`);
    ``"networkx"`` keeps the third-party solver available as an
    independent oracle for the cross-check tests.
    """
    n = wt.n
    # build the gadget over integer-labelled nodes
    labels: dict = {}

    def nid(label) -> int:
        if label not in labels:
            labels[label] = len(labels)
        return labels[label]

    gadget_edges: list[tuple[int, int, float]] = []
    for v in range(n):
        for k in range(int(quotas[v])):
            nid(("copy", v, k))
    for i, j in wt.edges():
        w = wt.weight(i, j)
        ue, ve = nid(("gadget_u", i, j)), nid(("gadget_v", i, j))
        gadget_edges.append((ue, ve, w))
        for k in range(int(quotas[i])):
            gadget_edges.append((nid(("copy", i, k)), ue, w))
        for l in range(int(quotas[j])):
            gadget_edges.append((ve, nid(("copy", j, l)), w))

    copy_ids = {labels[lab] for lab in labels if lab[0] == "copy"}
    if engine == "blossom":
        from repro.baselines.blossom import blossom_mwm

        mate = blossom_mwm(gadget_edges, len(labels))
    elif engine == "networkx":
        G = nx.Graph()
        G.add_nodes_from(range(len(labels)))
        for a, b, w in gadget_edges:
            G.add_edge(a, b, weight=w)
        mate = [-1] * len(labels)
        for a, b in nx.max_weight_matching(G, maxcardinality=False):
            mate[a] = b
            mate[b] = a
    else:
        raise ValueError(f"unknown engine {engine!r}")

    chosen = []
    for i, j in wt.edges():
        ue, ve = labels[("gadget_u", i, j)], labels[("gadget_v", i, j)]
        used_u = mate[ue] in copy_ids
        used_v = mate[ve] in copy_ids
        if used_u and used_v:
            chosen.append((i, j))
    return Matching(n, chosen)


def brute_force_bmatching(
    wt: WeightTable,
    quotas: Sequence[int],
    objective: Optional[Callable[[Matching], float]] = None,
    max_edges: int = 18,
) -> tuple[Matching, float]:
    """Exhaustive search over all feasible edge subsets (tiny instances).

    Returns ``(best_matching, best_value)``.  ``objective`` defaults to
    total weight; pass e.g. ``lambda M: M.total_satisfaction(ps)`` for
    the satisfaction objective.  Refuses instances with more than
    ``max_edges`` edges.
    """
    edges = list(wt.edges())
    if len(edges) > max_edges:
        raise ValueError(
            f"brute force limited to {max_edges} edges, instance has {len(edges)}"
        )
    if objective is None:
        objective = lambda M: M.total_weight(wt)  # noqa: E731

    n = wt.n
    best: tuple[float, Matching] = (-np.inf, Matching(n))
    for r in range(len(edges) + 1):
        for subset in combinations(edges, r):
            deg = [0] * n
            ok = True
            for i, j in subset:
                deg[i] += 1
                deg[j] += 1
                if deg[i] > quotas[i] or deg[j] > quotas[j]:
                    ok = False
                    break
            if not ok:
                continue
            matching = Matching(n, subset)
            val = objective(matching)
            if val > best[0]:
                best = (val, matching)
    return best[1], best[0]


def optimal_weight(wt: WeightTable, quotas: Sequence[int]) -> float:
    """Weight of the exact maximum-weight b-matching."""
    return max_weight_bmatching_milp(wt, quotas).total_weight(wt)


def optimal_satisfaction(ps: PreferenceSystem) -> float:
    """Total satisfaction of the exact maximising-satisfaction b-matching."""
    return max_satisfaction_bmatching_milp(ps).total_satisfaction(ps)
