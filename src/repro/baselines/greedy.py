"""Greedy and maximal-matching baselines.

- :func:`global_greedy_matching` — the textbook global greedy: scan all
  edges by decreasing weight, select when both endpoints have residual
  quota.  For b-matchings this coincides with LIC's sorted-scan
  execution (the globally heaviest pool edge is always locally
  heaviest), which is itself an instructive reproduction point: the
  paper's *distributed* algorithm computes exactly what the obvious
  centralised greedy computes, with only local communication.
- :func:`random_order_greedy` — maximal feasible matching in a uniformly
  random edge order: keeps the "maximal" structure but ignores weights;
  the gap to LIC isolates the value of weight-ordering.
- :func:`path_growing_matching` — Drake–Hougardy path-growing
  ½-approximation for the 1–1 special case; an independent linear-time
  comparator from the distributed-matching literature the paper cites.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.lic import lic_matching
from repro.core.matching import Matching
from repro.core.weights import WeightTable

__all__ = [
    "global_greedy_matching",
    "random_order_greedy",
    "path_growing_matching",
]


def global_greedy_matching(wt: WeightTable, quotas: Sequence[int]) -> Matching:
    """Global greedy max-weight b-matching (≡ LIC sorted-scan execution)."""
    return lic_matching(wt, quotas)


def random_order_greedy(
    wt: WeightTable, quotas: Sequence[int], rng: np.random.Generator
) -> Matching:
    """Maximal feasible b-matching built in uniformly random edge order.

    Ignores weights entirely; serves as the weight-blind control in the
    satisfaction-distribution experiment (F1).
    """
    n = wt.n
    edges = list(wt.edges())
    order = rng.permutation(len(edges))
    residual = [int(q) for q in quotas]
    matching = Matching(n)
    for idx in order:
        a, b = edges[idx]
        if residual[a] > 0 and residual[b] > 0:
            matching.add(a, b)
            residual[a] -= 1
            residual[b] -= 1
    return matching


def path_growing_matching(wt: WeightTable) -> Matching:
    """Drake–Hougardy path-growing algorithm (1–1 matchings only).

    Grows node-disjoint paths by repeatedly following the heaviest
    remaining edge from the current endpoint, alternately assigning the
    traversed edges to two candidate matchings ``M1``/``M2``; returns
    the heavier of the two.  Guarantees weight ≥ ½ · optimum for 1–1
    matchings in linear time.

    Raises if any node would need quota > 1 (the algorithm is defined
    for ordinary matchings; the paper's LIC/LID generalise it to
    quotas, which is part of the contribution).
    """
    n = wt.n
    # adjacency with removal
    alive: list[dict[int, float]] = [dict() for _ in range(n)]
    for (i, j), w in wt.items():
        alive[i][j] = w
        alive[j][i] = w
    m1: list[tuple[int, int]] = []
    m2: list[tuple[int, int]] = []
    w1 = w2 = 0.0

    in_path = [False] * n
    for start in range(n):
        if in_path[start] or not alive[start]:
            continue
        x = start
        side = 0
        while alive[x]:
            # heaviest remaining edge at x (ties by id for determinism)
            y = max(alive[x], key=lambda v: (alive[x][v], -v))
            w = alive[x][y]
            if side == 0:
                m1.append((x, y))
                w1 += w
            else:
                m2.append((x, y))
                w2 += w
            side ^= 1
            # remove x from the graph
            for v in list(alive[x]):
                del alive[v][x]
            alive[x].clear()
            in_path[x] = True
            x = y
        in_path[x] = True

    chosen = m1 if w1 >= w2 else m2
    # the alternating construction can still pair a node twice across
    # different paths' first edges? No: nodes are removed as paths grow,
    # so each node appears in at most one path; within a path the
    # alternation keeps each side node-disjoint.
    matching = Matching(n)
    used = [False] * n
    for i, j in chosen:
        if used[i] or used[j]:
            continue  # defensive: skip rather than crash
        matching.add(i, j)
        used[i] = used[j] = True
    return matching
