"""Gale–Shapley deferred acceptance (the paper's ref [4]).

The foundational two-sided algorithm the roommates literature grows out
of.  When an overlay's knowledge graph happens to be bipartite (e.g.
clients × servers, leechers × seeds), the stable-matching problem loses
its existence pathologies: deferred acceptance always produces a stable
matching, optimal for the proposing side.  This module implements the
quota version (college admissions / hospital-residents, generalised to
many-to-many proposers):

- proposers work down their preference lists until they hold ``b``
  acceptances or exhaust their lists;
- receivers provisionally hold their best ``b`` proposers and bounce
  anyone displaced.

Outputs are certified with the independent blocking-pair checker in the
tests; :func:`bipartition` detects two-sidedness by BFS 2-colouring.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.utils.validation import InvalidInstanceError

__all__ = ["bipartition", "gale_shapley"]


def bipartition(ps: PreferenceSystem) -> Optional[tuple[set[int], set[int]]]:
    """2-colour the instance graph; ``None`` if an odd cycle exists.

    Isolated nodes are assigned to the first side.  The returned sides
    partition all nodes.
    """
    colour: dict[int, int] = {}
    for start in ps.nodes():
        if start in colour:
            continue
        colour[start] = 0
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in ps.neighbors(v):
                if u not in colour:
                    colour[u] = 1 - colour[v]
                    queue.append(u)
                elif colour[u] == colour[v]:
                    return None
    side_a = {v for v, c in colour.items() if c == 0}
    side_b = {v for v, c in colour.items() if c == 1}
    return side_a, side_b


def gale_shapley(
    ps: PreferenceSystem,
    proposers: Optional[Sequence[int]] = None,
) -> Matching:
    """Deferred acceptance on a bipartite instance.

    Parameters
    ----------
    proposers:
        The proposing side.  Defaults to the first side found by
        :func:`bipartition`.  Every edge must cross between proposers
        and non-proposers; otherwise :class:`InvalidInstanceError`.

    Returns
    -------
    Matching
        The proposer-optimal stable b-matching (stability in the
        blocking-pair sense of :mod:`repro.baselines.verify` — the
        classic deferred-acceptance guarantee, checked property-style in
        the tests).
    """
    if proposers is None:
        sides = bipartition(ps)
        if sides is None:
            raise InvalidInstanceError(
                "instance is not bipartite; gale_shapley needs two sides "
                "(use stable_fixtures_matching for the general case)"
            )
        proposer_set = sides[0]
    else:
        proposer_set = set(int(p) for p in proposers)
        for i, j in ps.edges():
            if (i in proposer_set) == (j in proposer_set):
                raise InvalidInstanceError(
                    f"edge ({i},{j}) does not cross the given bipartition"
                )

    holds: dict[int, set[int]] = {
        j: set() for j in ps.nodes() if j not in proposer_set
    }
    held_count = {a: 0 for a in proposer_set}
    next_idx = {a: 0 for a in proposer_set}
    work = deque(a for a in sorted(proposer_set) if ps.quota(a) > 0)
    in_queue = {a: True for a in work}

    while work:
        a = work.popleft()
        in_queue[a] = False
        lst = ps.preference_list(a)
        while held_count[a] < ps.quota(a) and next_idx[a] < len(lst):
            j = lst[next_idx[a]]
            next_idx[a] += 1
            pool = holds[j]
            if len(pool) < ps.quota(j):
                pool.add(a)
                held_count[a] += 1
            else:
                worst = max(pool, key=lambda v: ps.rank(j, v))
                if ps.rank(j, a) < ps.rank(j, worst):
                    pool.discard(worst)
                    held_count[worst] -= 1
                    pool.add(a)
                    held_count[a] += 1
                    if not in_queue.get(worst, False):
                        work.append(worst)
                        in_queue[worst] = True
                # else: rejected outright; continue down the list

    matching = Matching(ps.n)
    for j, pool in holds.items():
        for a in pool:
            matching.add(a, j)
    matching.validate(ps)
    return matching
