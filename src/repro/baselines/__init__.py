"""Baselines and exact comparators for the paper's experiments.

- :mod:`repro.baselines.exact` — the true optima (MILP / gadget / brute
  force) that approximation ratios are measured against,
- :mod:`repro.baselines.greedy` — global greedy, random-order greedy and
  path-growing comparators,
- :mod:`repro.baselines.acyclic` — best-response dynamics (Gai et al.),
- :mod:`repro.baselines.stable_fixtures` — certified stable-fixtures
  hybrid solver (Irving & Scott),
- :mod:`repro.baselines.random_matching` — random maximal b-matching,
- :mod:`repro.baselines.verify` — blocking-pair / stability certifiers.
"""

from repro.baselines.acyclic import BestResponseResult, best_response_dynamics
from repro.baselines.blossom import blossom_mwm, max_weight_matching_blossom
from repro.baselines.exact import (
    brute_force_bmatching,
    max_satisfaction_bmatching_milp,
    max_weight_bmatching_gadget,
    max_weight_bmatching_milp,
    optimal_satisfaction,
    optimal_weight,
)
from repro.baselines.hoepman import HoepmanNode, HoepmanResult, run_hoepman
from repro.baselines.local_search import LocalSearchResult, local_search_bmatching
from repro.baselines.gale_shapley import bipartition, gale_shapley
from repro.baselines.greedy import (
    global_greedy_matching,
    path_growing_matching,
    random_order_greedy,
)
from repro.baselines.random_matching import random_bmatching
from repro.baselines.stable_roommates import StableRoommatesResult, stable_roommates
from repro.baselines.stable_fixtures import (
    Phase1State,
    StableFixturesResult,
    phase1,
    stable_fixtures_matching,
)
from repro.baselines.verify import (
    blocking_pairs,
    check_matching,
    count_blocking_pairs,
    is_stable,
    stability_report,
)

__all__ = [
    "BestResponseResult",
    "blossom_mwm",
    "max_weight_matching_blossom",
    "best_response_dynamics",
    "brute_force_bmatching",
    "max_satisfaction_bmatching_milp",
    "max_weight_bmatching_gadget",
    "max_weight_bmatching_milp",
    "optimal_satisfaction",
    "optimal_weight",
    "HoepmanNode",
    "LocalSearchResult",
    "local_search_bmatching",
    "HoepmanResult",
    "run_hoepman",
    "bipartition",
    "gale_shapley",
    "global_greedy_matching",
    "path_growing_matching",
    "random_order_greedy",
    "random_bmatching",
    "StableRoommatesResult",
    "stable_roommates",
    "Phase1State",
    "StableFixturesResult",
    "phase1",
    "stable_fixtures_matching",
    "blocking_pairs",
    "check_matching",
    "stability_report",
    "count_blocking_pairs",
    "is_stable",
]
