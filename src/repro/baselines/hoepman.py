"""Hoepman's distributed weighted matching protocol (the paper's ref [6]).

J.-H. Hoepman, *"Simple distributed weighted matchings"*, 2004 — the
distributed ½-approximation for **one-to-one** maximum weighted matching
that the paper cites among prior distributed approximation algorithms.
LID generalises exactly this idea to quotas ``b_i``; implementing the
original makes the lineage executable and gives an independent
comparator for the ``b = 1`` special case.

Protocol (as published, REQ/DROP messages):

- every node points at (sends ``REQ`` to) its heaviest *available*
  neighbour;
- two nodes pointing at each other are matched;
- a matched node sends ``DROP`` to all other neighbours, which remove
  it from their candidate sets and re-point.

With a globally consistent strict order on edge weights (our edge key)
this computes exactly the locally-heaviest greedy matching — i.e. the
same edge set as LIC/LID with unit quotas, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.matching import Matching
from repro.core.weights import WeightTable
from repro.distsim.metrics import SimMetrics
from repro.distsim.network import LatencyModel, Network
from repro.distsim.node import ProtocolNode
from repro.distsim.scheduler import Simulator
from repro.utils.validation import ProtocolError

__all__ = ["HoepmanNode", "HoepmanResult", "run_hoepman"]

REQ = "REQ"
DROP = "DROP"


class HoepmanNode(ProtocolNode):
    """One participant of Hoepman's matching protocol.

    Parameters
    ----------
    weight_list:
        Neighbours in decreasing edge-key order (shared total order).
    """

    def __init__(self, weight_list: Sequence[int]):
        super().__init__()
        self.weight_list = list(weight_list)
        self.candidates: set[int] = set(weight_list)
        self.requested: Optional[int] = None  # who my REQ points at
        self.got_req_from: set[int] = set()
        self.partner: Optional[int] = None
        self.reqs_sent = 0
        self.drops_sent = 0

    def on_start(self) -> None:
        self._point()

    def _best_candidate(self) -> Optional[int]:
        for j in self.weight_list:
            if j in self.candidates:
                return j
        return None

    def _point(self) -> None:
        """(Re-)point my request at the heaviest remaining candidate."""
        if self.partner is not None:
            return
        best = self._best_candidate()
        if best is None:
            # no candidates left: I stay unmatched
            self.terminate()
            return
        if self.requested != best:
            self.requested = best
            self.send(best, REQ)
            self.reqs_sent += 1
        if self.requested in self.got_req_from:
            self._match(self.requested)

    def _match(self, j: int) -> None:
        self.partner = j
        for v in self.weight_list:
            if v != j and v in self.candidates:
                self.send(v, DROP)
                self.drops_sent += 1
        self.terminate()

    def on_message(self, src: int, kind: str, payload) -> None:
        if kind == REQ:
            self.got_req_from.add(src)
            if self.requested == src and self.partner is None:
                self._match(src)
        elif kind == DROP:
            if src not in self.candidates:
                return
            self.candidates.discard(src)
            if self.requested == src:
                self.requested = None
                self._point()
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"Hoepman node got unknown kind {kind!r}")


@dataclass
class HoepmanResult:
    """Outcome of a Hoepman run."""

    matching: Matching
    metrics: SimMetrics
    nodes: list[HoepmanNode]

    @property
    def req_messages(self) -> int:
        """Total REQ messages."""
        return self.metrics.sent_by_kind.get(REQ, 0)

    @property
    def drop_messages(self) -> int:
        """Total DROP messages."""
        return self.metrics.sent_by_kind.get(DROP, 0)


def run_hoepman(
    wt: WeightTable,
    latency: Optional[LatencyModel] = None,
    fifo: bool = True,
    seed: int = 0,
) -> HoepmanResult:
    """Execute Hoepman's protocol over a weight table (quotas = 1).

    Returns the 1–1 matching; by construction it equals the
    locally-heaviest greedy matching with unit quotas.
    """
    n = wt.n
    nodes = [HoepmanNode(wt.weight_list(i)) for i in range(n)]
    network = Network(n, latency=latency, fifo=fifo, links=wt.edges(), seed=seed)
    sim = Simulator(network, nodes)
    metrics = sim.run()
    matching = Matching(n)
    for i, node in enumerate(nodes):
        j = node.partner
        if j is not None:
            if nodes[j].partner != i:
                raise ProtocolError(f"asymmetric Hoepman match {i} ~ {j}")
            if i < j:
                matching.add(i, j)
    return HoepmanResult(matching=matching, metrics=metrics, nodes=nodes)
