"""Stable fixtures baseline (Irving & Scott [7]) — hybrid solver.

The *stable fixtures* problem is the many-to-many stable roommates
variant the paper's Section 2 identifies with its b-matching model: find
a feasible matching with **no blocking pair** (see
:mod:`repro.baselines.verify`).  Irving & Scott give an O(m) exact
algorithm (proposal phase + rotation elimination).  For this
reproduction the baseline is only consumed at laptop scale by the F1
satisfaction-distribution experiment, so we implement a *certified
hybrid* instead of the full rotation machinery:

1. **Phase 1** (:func:`phase1`) — the proposal/reduction phase, a direct
   many-to-many generalisation of the roommates proposal round: nodes
   propose down their lists; a node holds its ``b`` best proposals and
   bounces the rest.  The mutual-hold edge set is frequently already a
   stable matching.
2. **Dynamics fallback** — best-response blocking-pair resolution seeded
   with the phase-1 state.
3. **Exhaustive fallback** — for small instances, exact search over all
   feasible matchings, which also *decides* existence.

Every returned matching is certified by the independent
:func:`~repro.baselines.verify.is_stable` checker; the result records
which method produced it.  When all three stages fail on a large
instance the result honestly reports ``exists=None`` (unknown) — see
DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Literal, Optional

from repro.baselines.acyclic import best_response_dynamics
from repro.baselines.verify import is_stable
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem

__all__ = ["Phase1State", "phase1", "StableFixturesResult", "stable_fixtures_matching"]


@dataclass
class Phase1State:
    """Outcome of the proposal phase.

    Attributes
    ----------
    holds:
        ``holds[j]`` = set of nodes whose proposals ``j`` currently holds.
    proposed_to:
        ``proposed_to[i]`` = set of nodes that hold ``i``'s proposal.
    mutual:
        Edges held in both directions — the phase-1 candidate matching.
    exhausted:
        Nodes that ran out of list entries before placing ``b`` proposals
        (a hint — not a proof — that the instance may lack a stable
        matching with all quotas filled).
    """

    holds: list[set[int]]
    proposed_to: list[set[int]]
    mutual: list[tuple[int, int]]
    exhausted: list[int]


def phase1(ps: PreferenceSystem) -> Phase1State:
    """Run the many-to-many proposal phase.

    Each node needs to place ``b_i`` proposals.  A proposal from ``i``
    to ``j`` is *held* if ``j`` has hold capacity left or prefers ``i``
    to its worst held proposer (who is then bounced and resumes
    proposing).  Deterministic: nodes are processed from a FIFO work
    queue seeded in id order; each node proposes strictly down its list.
    """
    n = ps.n
    holds: list[set[int]] = [set() for _ in range(n)]
    proposed_to: list[set[int]] = [set() for _ in range(n)]
    next_idx = [0] * n  # next list position to propose to
    from collections import deque

    work = deque(i for i in range(n) if ps.quota(i) > 0)
    in_queue = [ps.quota(i) > 0 for i in range(n)]

    def needs(i: int) -> bool:
        return len(proposed_to[i]) < ps.quota(i)

    while work:
        i = work.popleft()
        in_queue[i] = False
        lst = ps.preference_list(i)
        while needs(i) and next_idx[i] < len(lst):
            j = lst[next_idx[i]]
            next_idx[i] += 1
            if len(holds[j]) < ps.quota(j):
                holds[j].add(i)
                proposed_to[i].add(j)
            else:
                worst = max(holds[j], key=lambda v: ps.rank(j, v))
                if ps.rank(j, i) < ps.rank(j, worst):
                    holds[j].discard(worst)
                    proposed_to[worst].discard(j)
                    holds[j].add(i)
                    proposed_to[i].add(j)
                    if not in_queue[worst]:
                        work.append(worst)
                        in_queue[worst] = True
                # else: rejected outright, continue down the list
    mutual = [
        (i, j)
        for i in range(n)
        for j in proposed_to[i]
        if i < j and j in proposed_to[i] and i in proposed_to[j]
    ]
    exhausted = [i for i in range(n) if needs(i) and next_idx[i] >= ps.degree(i)]
    return Phase1State(holds, proposed_to, mutual, exhausted)


@dataclass
class StableFixturesResult:
    """A certified stable-fixtures answer.

    ``matching`` is ``None`` when no stable matching was found;
    ``exists`` is then ``False`` if exhaustive search proved
    non-existence, or ``None`` if the instance was too large to decide.
    """

    matching: Optional[Matching]
    method: Literal["irving", "phase1", "dynamics", "exhaustive", "none"]
    exists: Optional[bool]


def _exhaustive_stable(ps: PreferenceSystem, max_edges: int) -> Optional[Matching]:
    edges = list(ps.edges())
    if len(edges) > max_edges:
        raise ValueError("instance too large for exhaustive stable search")
    # search larger subsets first: stable matchings tend to be maximal
    for r in range(len(edges), -1, -1):
        for subset in combinations(edges, r):
            m = Matching(ps.n)
            ok = True
            for i, j in subset:
                if (
                    m.degree(i) >= ps.quota(i)
                    or m.degree(j) >= ps.quota(j)
                ):
                    ok = False
                    break
                m.add(i, j)
            if ok and is_stable(ps, m):
                return m
    return None


def stable_fixtures_matching(
    ps: PreferenceSystem,
    dynamics_steps: int = 20_000,
    max_exhaustive_edges: int = 16,
) -> StableFixturesResult:
    """Find a stable b-matching, or decide/report non-existence.

    See the module docstring for the three-stage strategy.  Every
    returned matching satisfies :func:`repro.baselines.verify.is_stable`.

    When every quota is 1 the instance is a stable roommates problem and
    Irving's exact algorithm (:mod:`repro.baselines.stable_roommates`)
    is tried first; its certified answers (including non-existence, with
    no size limit) short-circuit the hybrid.
    """
    if all(ps.quota(i) <= 1 for i in ps.nodes()):
        from repro.baselines.stable_roommates import stable_roommates

        sr = stable_roommates(ps)
        if sr.certain:
            if sr.matching is not None:
                return StableFixturesResult(sr.matching, "irving", True)
            if sr.exists is False:
                return StableFixturesResult(None, "irving", False)

    state = phase1(ps)
    candidate = Matching(ps.n, state.mutual)
    if is_stable(ps, candidate):
        return StableFixturesResult(candidate, "phase1", True)

    dyn = best_response_dynamics(
        ps, max_steps=dynamics_steps, rule="first", initial=candidate
    )
    if dyn.converged and is_stable(ps, dyn.matching):
        return StableFixturesResult(dyn.matching, "dynamics", True)

    if ps.m <= max_exhaustive_edges:
        found = _exhaustive_stable(ps, max_exhaustive_edges)
        if found is not None:
            return StableFixturesResult(found, "exhaustive", True)
        return StableFixturesResult(None, "none", False)
    return StableFixturesResult(None, "none", None)
