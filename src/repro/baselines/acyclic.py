"""Best-response b-matching dynamics (Gai et al. [3], Mathieu [13]).

The baseline the paper positions itself against: peers repeatedly
resolve *blocking pairs* — an unmatched pair ``(i, j)`` both endpoints
want is formed, each endpoint dropping its worst partner if over quota.
Gai et al. prove these dynamics stabilise **iff** the preference system
is acyclic; with cyclic preferences they can oscillate forever, which
is the restriction the paper's symmetric-weight construction removes
(Lemma 5).  Experiment F4 reproduces exactly this contrast.

:func:`best_response_dynamics` runs the dynamics with a pluggable pair
selection rule, an iteration cap and cycle detection via state hashing,
and reports whether a stable state was reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.baselines.verify import blocking_pairs
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem

__all__ = ["BestResponseResult", "best_response_dynamics"]


@dataclass
class BestResponseResult:
    """Outcome of a best-response run.

    Attributes
    ----------
    matching:
        Final (possibly unstable) matching.
    converged:
        ``True`` iff no blocking pair remained.
    steps:
        Number of blocking-pair resolutions performed.
    cycled:
        ``True`` when a previously seen global state recurred — a proof
        of oscillation under the deterministic selection rules.
    """

    matching: Matching
    converged: bool
    steps: int
    cycled: bool


def _satisfy_pair(ps: PreferenceSystem, matching: Matching, i: int, j: int) -> None:
    """Form edge ``(i, j)``; each endpoint drops its worst partner if full."""
    for v, u in ((i, j), (j, i)):
        if matching.degree(v) >= ps.quota(v):
            worst = max(matching.connections(v), key=lambda c: ps.rank(v, c))
            matching.remove(v, worst)
    matching.add(i, j)


def best_response_dynamics(
    ps: PreferenceSystem,
    max_steps: int = 10_000,
    rule: Literal["first", "best", "random"] = "first",
    rng: Optional[np.random.Generator] = None,
    initial: Optional[Matching] = None,
    detect_cycles: bool = True,
) -> BestResponseResult:
    """Run blocking-pair resolution until stable, cycling, or budget end.

    Parameters
    ----------
    rule:
        Which blocking pair to satisfy each step: the ``first`` in
        canonical edge order, the one ``best`` for the proposing side
        (minimum rank sum), or a ``random`` one (requires ``rng``).
    detect_cycles:
        Hash every visited global state (deterministic rules only) and
        stop with ``cycled=True`` on recurrence.  With ``rule="random"``
        a revisited state does not imply divergence, so detection is
        skipped.

    Notes
    -----
    Each step strictly improves both chosen endpoints but can hurt the
    dropped partners — the source of oscillation with cyclic
    preferences.  For acyclic systems Gai et al. guarantee
    stabilisation; tests check this on weight-induced (hence acyclic)
    instances.
    """
    if rule == "random" and rng is None:
        raise ValueError("rule='random' requires an rng")
    matching = initial.copy() if initial is not None else Matching(ps.n)
    matching.validate(ps)

    seen: set[frozenset] = set()
    steps = 0
    while steps < max_steps:
        blocks = blocking_pairs(ps, matching)
        if not blocks:
            return BestResponseResult(matching, True, steps, False)
        if detect_cycles and rule != "random":
            state = matching.edge_set()
            if state in seen:
                return BestResponseResult(matching, False, steps, True)
            seen.add(state)
        if rule == "first":
            i, j = blocks[0]
        elif rule == "best":
            i, j = min(blocks, key=lambda e: (ps.rank(e[0], e[1]) + ps.rank(e[1], e[0]), e))
        else:
            assert rng is not None
            i, j = blocks[int(rng.integers(len(blocks)))]
        _satisfy_pair(ps, matching, i, j)
        steps += 1
    return BestResponseResult(matching, False, steps, False)
