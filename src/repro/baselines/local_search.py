"""Local-search improvement for weighted b-matchings.

A classical way to beat the greedy ½-guarantee: starting from any
feasible matching, apply weight-improving local moves until none
applies.  Implemented moves:

- **add** — insert an edge both of whose endpoints have residual quota
  (restores maximality),
- **swap** — replace one matched edge by one unmatched edge of larger
  weight feasible after the removal,
- **two-for-one** — remove one matched edge and insert *two* unmatched
  edges whose combined weight is larger (the move class behind the
  (2/3−ε)-approximation local-search results for matching).

The ablation bench uses this to quantify how much head-room LIC leaves
on the table: because LIC's output has no weighted blocking edge, *add*
and *swap* never fire on it — only *two-for-one* can improve it, and
measured gains are small (a percent or two), which is the empirical
story behind the good T1 ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.matching import Matching
from repro.core.weights import WeightTable

__all__ = ["LocalSearchResult", "local_search_bmatching"]


@dataclass
class LocalSearchResult:
    """Outcome of a local-search run."""

    matching: Matching
    moves: int
    add_moves: int
    swap_moves: int
    two_for_one_moves: int


def _residual(matching: Matching, quotas: Sequence[int], v: int) -> int:
    return quotas[v] - matching.degree(v)


def _try_add(wt: WeightTable, quotas, m: Matching) -> bool:
    for i, j in wt.sorted_edges():
        if (
            not m.has_edge(i, j)
            and _residual(m, quotas, i) > 0
            and _residual(m, quotas, j) > 0
        ):
            m.add(i, j)
            return True
    return False


def _try_swap(wt: WeightTable, quotas, m: Matching) -> bool:
    # heaviest unmatched edge that becomes feasible by removing one
    # strictly lighter matched edge at a saturated endpoint
    for i, j in wt.sorted_edges():
        if m.has_edge(i, j):
            continue
        w_new = wt.weight(i, j)
        # candidate removals: lightest matched edge at each saturated end
        removals = []
        feasible = True
        for v in (i, j):
            if _residual(m, quotas, v) <= 0:
                worst = min(
                    m.connections(v), key=lambda c: wt.key(v, c)
                )
                removals.append((v, worst))
        if len(removals) == 2 and removals[0][1] in (i, j):
            feasible = False  # degenerate overlap; skip
        if not feasible:
            continue
        if len(removals) > 1:
            continue  # removing two edges for one is never improving here
        if not removals:
            continue  # pure add handles this
        (v, worst) = removals[0]
        if wt.weight(v, worst) < w_new:
            m.remove(v, worst)
            m.add(i, j)
            return True
    return False


def _try_two_for_one(wt: WeightTable, quotas, m: Matching) -> bool:
    # remove one matched edge (a,b); add the best feasible unmatched edge
    # at a and at b; improve if the pair outweighs the removed edge
    for a, b in m.edges():
        w_old = wt.weight(a, b)
        m.remove(a, b)
        best: list[tuple[int, int]] = []
        gain = 0.0
        used: set[int] = set()
        for v in (a, b):
            cand = None
            for u in wt.weight_list(v):
                if u in used or u == a or u == b:
                    continue
                if not m.has_edge(v, u) and _residual(m, quotas, u) > 0 and _residual(m, quotas, v) > 0:
                    cand = u
                    break
            if cand is not None:
                best.append((v, cand))
                used.add(cand)
                used.add(v)
                gain += wt.weight(v, cand)
                m.add(v, cand)  # tentatively, so the second pick sees it
        if gain > w_old + 1e-12:
            return True  # keep the inserted edges
        # revert
        for v, u in best:
            m.remove(v, u)
        m.add(a, b)
    return False


def local_search_bmatching(
    wt: WeightTable,
    quotas: Sequence[int],
    initial: Matching,
    max_moves: int = 100_000,
) -> LocalSearchResult:
    """Improve ``initial`` to a local optimum under add/swap/2-for-1 moves.

    The input is copied; every intermediate state stays feasible.
    Terminates because each move strictly increases total weight, which
    is bounded.
    """
    m = initial.copy()
    adds = swaps = twos = 0
    for _ in range(max_moves):
        if _try_add(wt, quotas, m):
            adds += 1
            continue
        if _try_swap(wt, quotas, m):
            swaps += 1
            continue
        if _try_two_for_one(wt, quotas, m):
            twos += 1
            continue
        break
    return LocalSearchResult(
        matching=m,
        moves=adds + swaps + twos,
        add_moves=adds,
        swap_moves=swaps,
        two_for_one_moves=twos,
    )
