"""Independent certifiers for preference-based properties.

The weight-based certificates live in :mod:`repro.core.analysis`; this
module certifies properties stated in terms of the *original preference
lists* — most importantly b-matching **stability** (no blocking pair),
the solution concept of the stable fixtures problem the paper
generalises.

Structured verification (feasibility, locality, satisfaction
recomputation, eq.-9 consistency, theorem bounds) lives in
:mod:`repro.testing.oracles`; :func:`check_matching` and
:func:`stability_report` are the entry points here and return typed
:class:`~repro.testing.oracles.OracleReport` objects.  The historical
boolean-only certifier :func:`verify_matching` is kept as a deprecated
shim over the oracle layer.

Definitions (Irving & Scott [7], Cechlárová & Fleiner [1]):
a pair ``(i, j) ∈ E \\ M`` *blocks* matching ``M`` when both endpoints
would rather have the edge, where node ``v`` would rather have ``(v,u)``
if it has spare quota (``c_v < b_v``) **or** it prefers ``u`` to at
least one current partner.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable

__all__ = [
    "blocking_pairs",
    "is_stable",
    "count_blocking_pairs",
    "weighted_blocking_pairs",
    "count_weighted_blocking_pairs",
    "check_matching",
    "stability_report",
    "verify_matching",
]

Edge = tuple[int, int]


def _would_accept(ps: PreferenceSystem, matching: Matching, v: int, u: int) -> bool:
    """Whether node ``v`` would (weakly) gain by adding partner ``u``."""
    conns = matching.connections(v)
    if len(conns) < ps.quota(v):
        return True
    r = ps.rank(v, u)
    return any(ps.rank(v, c) > r for c in conns)


def blocking_pairs(ps: PreferenceSystem, matching: Matching) -> list[Edge]:
    """All pairs blocking ``matching`` (empty iff stable).

    Node ``v`` accepts partner ``u`` iff it has spare quota or ranks
    ``u`` above its current worst partner, so both tests reduce to one
    comparison against hoisted per-node state (spare flag + worst held
    rank) instead of a partner-set scan per pair — the per-pair cost
    that used to dominate verification on large truncation sweeps.
    """
    n = ps.n
    spare = [False] * n
    worst = [-1] * n  # max rank among current partners; -1 when unmatched
    for v in range(n):
        conns = matching.connections(v)
        if len(conns) < ps.quota(v):
            spare[v] = True
        if conns:
            worst[v] = max(ps.rank(v, c) for c in conns)
    out = []
    for i, j in ps.edges():
        if matching.has_edge(i, j):
            continue
        if (spare[i] or ps.rank(i, j) < worst[i]) and (
            spare[j] or ps.rank(j, i) < worst[j]
        ):
            out.append((i, j))
    return out


def count_blocking_pairs(ps: PreferenceSystem, matching: Matching) -> int:
    """Number of blocking pairs — the instability measure used in F4."""
    return len(blocking_pairs(ps, matching))


def weighted_blocking_pairs(
    ps: PreferenceSystem, matching: Matching, wt: WeightTable
) -> list[Edge]:
    """Pairs blocking ``matching`` under the eq.-9 weight order.

    A pair ``(i, j) ∈ E \\ M`` *weight-blocks* when both endpoints would
    strictly gain by the total-order edge key — spare quota, or
    ``key(v, u)`` above the lightest currently held edge.  Unlike the
    rank-based notion (under which converged LID is only *almost*
    stable, Theorem 3), the converged LID/LIC matching is exactly stable
    here: locally dominant selection leaves no weight-blocking pair, so
    this count is 0 iff a truncated run has reached the fixpoint — the
    measure the truncation CI gate pins at ``k=∞``.
    """
    if wt.n != ps.n:
        raise ValueError(
            f"weight table sized for {wt.n} nodes but instance has {ps.n}"
        )
    n = ps.n
    spare = [False] * n
    lightest = [None] * n  # min edge key among current partners
    for v in range(n):
        conns = matching.connections(v)
        if len(conns) < ps.quota(v):
            spare[v] = True
        if conns:
            lightest[v] = min(wt.key(v, c) for c in conns)
    out = []
    for i, j in ps.edges():
        if matching.has_edge(i, j):
            continue
        k = wt.key(i, j)
        if (spare[i] or k > lightest[i]) and (spare[j] or k > lightest[j]):
            out.append((i, j))
    return out


def count_weighted_blocking_pairs(
    ps: PreferenceSystem, matching: Matching, wt: WeightTable
) -> int:
    """Number of weight-blocking pairs (0 iff at the LIC fixpoint)."""
    return len(weighted_blocking_pairs(ps, matching, wt))


def is_stable(ps: PreferenceSystem, matching: Matching) -> bool:
    """Whether ``matching`` is a stable b-matching for ``ps``.

    Feasibility is checked first (through the oracle layer); an
    infeasible matching is never considered stable.
    """
    return stability_report(ps, matching).ok


def check_matching(
    ps: PreferenceSystem,
    matching: Matching,
    wt: Optional[WeightTable] = None,
    bounds: bool = False,
):
    """Structured verification via :mod:`repro.testing.oracles`.

    Runs quota feasibility, edge locality, mutual consistency and the
    exact eq.-1/4 satisfaction recomputation (plus eq.-9 weight
    consistency when ``wt`` is given and the Theorem 1/3 bounds when
    ``bounds=True``), returning an
    :class:`~repro.testing.oracles.OracleReport` of typed violations.
    """
    from repro.testing.oracles import verify_matching as _verify

    return _verify(ps, matching, wt=wt, bounds=bounds)


def stability_report(ps: PreferenceSystem, matching: Matching):
    """Feasibility (oracle layer) plus blocking pairs, as typed records."""
    from repro.testing.oracles import (
        OracleReport,
        Violation,
        check_edge_locality,
        check_mutual_consistency,
        check_quota,
    )

    report = OracleReport()
    report.extend(check_quota(ps, matching))
    report.extend(check_edge_locality(ps, matching))
    report.extend(check_mutual_consistency(ps, matching))
    report.checks_run.append("stability")
    for pair in blocking_pairs(ps, matching):
        report.violations.append(Violation(
            check="stability", subject=pair,
            message=f"pair {pair} blocks the matching",
        ))
    return report


def verify_matching(ps: PreferenceSystem, matching: Matching) -> bool:
    """Deprecated boolean certifier — use :func:`check_matching`.

    Returns ``True`` iff the matching passes the oracle battery (quota,
    locality, mutual consistency, satisfaction recomputation).  Kept so
    pre-conformance callers keep working; the boolean discards the
    violation records that say *what* failed.
    """
    warnings.warn(
        "verify_matching() is deprecated; use check_matching() for the "
        "structured OracleReport",
        DeprecationWarning,
        stacklevel=2,
    )
    return check_matching(ps, matching).ok
