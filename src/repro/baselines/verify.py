"""Independent certifiers for preference-based properties.

The weight-based certificates live in :mod:`repro.core.analysis`; this
module certifies properties stated in terms of the *original preference
lists* — most importantly b-matching **stability** (no blocking pair),
the solution concept of the stable fixtures problem the paper
generalises.

Definitions (Irving & Scott [7], Cechlárová & Fleiner [1]):
a pair ``(i, j) ∈ E \\ M`` *blocks* matching ``M`` when both endpoints
would rather have the edge, where node ``v`` would rather have ``(v,u)``
if it has spare quota (``c_v < b_v``) **or** it prefers ``u`` to at
least one current partner.
"""

from __future__ import annotations

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem

__all__ = ["blocking_pairs", "is_stable", "count_blocking_pairs"]

Edge = tuple[int, int]


def _would_accept(ps: PreferenceSystem, matching: Matching, v: int, u: int) -> bool:
    """Whether node ``v`` would (weakly) gain by adding partner ``u``."""
    conns = matching.connections(v)
    if len(conns) < ps.quota(v):
        return True
    r = ps.rank(v, u)
    return any(ps.rank(v, c) > r for c in conns)


def blocking_pairs(ps: PreferenceSystem, matching: Matching) -> list[Edge]:
    """All pairs blocking ``matching`` (empty iff stable)."""
    out = []
    for i, j in ps.edges():
        if matching.has_edge(i, j):
            continue
        if _would_accept(ps, matching, i, j) and _would_accept(ps, matching, j, i):
            out.append((i, j))
    return out


def count_blocking_pairs(ps: PreferenceSystem, matching: Matching) -> int:
    """Number of blocking pairs — the instability measure used in F4."""
    return len(blocking_pairs(ps, matching))


def is_stable(ps: PreferenceSystem, matching: Matching) -> bool:
    """Whether ``matching`` is a stable b-matching for ``ps``.

    Feasibility is checked first; an infeasible matching is never
    considered stable.
    """
    if not matching.is_feasible(ps):
        return False
    return not blocking_pairs(ps, matching)
