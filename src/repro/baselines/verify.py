"""Independent certifiers for preference-based properties.

The weight-based certificates live in :mod:`repro.core.analysis`; this
module certifies properties stated in terms of the *original preference
lists* — most importantly b-matching **stability** (no blocking pair),
the solution concept of the stable fixtures problem the paper
generalises.

Structured verification (feasibility, locality, satisfaction
recomputation, eq.-9 consistency, theorem bounds) lives in
:mod:`repro.testing.oracles`; :func:`check_matching` and
:func:`stability_report` are the entry points here and return typed
:class:`~repro.testing.oracles.OracleReport` objects.  The historical
boolean-only certifier :func:`verify_matching` is kept as a deprecated
shim over the oracle layer.

Definitions (Irving & Scott [7], Cechlárová & Fleiner [1]):
a pair ``(i, j) ∈ E \\ M`` *blocks* matching ``M`` when both endpoints
would rather have the edge, where node ``v`` would rather have ``(v,u)``
if it has spare quota (``c_v < b_v``) **or** it prefers ``u`` to at
least one current partner.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable

__all__ = [
    "blocking_pairs",
    "is_stable",
    "count_blocking_pairs",
    "check_matching",
    "stability_report",
    "verify_matching",
]

Edge = tuple[int, int]


def _would_accept(ps: PreferenceSystem, matching: Matching, v: int, u: int) -> bool:
    """Whether node ``v`` would (weakly) gain by adding partner ``u``."""
    conns = matching.connections(v)
    if len(conns) < ps.quota(v):
        return True
    r = ps.rank(v, u)
    return any(ps.rank(v, c) > r for c in conns)


def blocking_pairs(ps: PreferenceSystem, matching: Matching) -> list[Edge]:
    """All pairs blocking ``matching`` (empty iff stable)."""
    out = []
    for i, j in ps.edges():
        if matching.has_edge(i, j):
            continue
        if _would_accept(ps, matching, i, j) and _would_accept(ps, matching, j, i):
            out.append((i, j))
    return out


def count_blocking_pairs(ps: PreferenceSystem, matching: Matching) -> int:
    """Number of blocking pairs — the instability measure used in F4."""
    return len(blocking_pairs(ps, matching))


def is_stable(ps: PreferenceSystem, matching: Matching) -> bool:
    """Whether ``matching`` is a stable b-matching for ``ps``.

    Feasibility is checked first (through the oracle layer); an
    infeasible matching is never considered stable.
    """
    return stability_report(ps, matching).ok


def check_matching(
    ps: PreferenceSystem,
    matching: Matching,
    wt: Optional[WeightTable] = None,
    bounds: bool = False,
):
    """Structured verification via :mod:`repro.testing.oracles`.

    Runs quota feasibility, edge locality, mutual consistency and the
    exact eq.-1/4 satisfaction recomputation (plus eq.-9 weight
    consistency when ``wt`` is given and the Theorem 1/3 bounds when
    ``bounds=True``), returning an
    :class:`~repro.testing.oracles.OracleReport` of typed violations.
    """
    from repro.testing.oracles import verify_matching as _verify

    return _verify(ps, matching, wt=wt, bounds=bounds)


def stability_report(ps: PreferenceSystem, matching: Matching):
    """Feasibility (oracle layer) plus blocking pairs, as typed records."""
    from repro.testing.oracles import (
        OracleReport,
        Violation,
        check_edge_locality,
        check_mutual_consistency,
        check_quota,
    )

    report = OracleReport()
    report.extend(check_quota(ps, matching))
    report.extend(check_edge_locality(ps, matching))
    report.extend(check_mutual_consistency(ps, matching))
    report.checks_run.append("stability")
    for pair in blocking_pairs(ps, matching):
        report.violations.append(Violation(
            check="stability", subject=pair,
            message=f"pair {pair} blocks the matching",
        ))
    return report


def verify_matching(ps: PreferenceSystem, matching: Matching) -> bool:
    """Deprecated boolean certifier — use :func:`check_matching`.

    Returns ``True`` iff the matching passes the oracle battery (quota,
    locality, mutual consistency, satisfaction recomputation).  Kept so
    pre-conformance callers keep working; the boolean discards the
    violation records that say *what* failed.
    """
    warnings.warn(
        "verify_matching() is deprecated; use check_matching() for the "
        "structured OracleReport",
        DeprecationWarning,
        stacklevel=2,
    )
    return check_matching(ps, matching).ok
