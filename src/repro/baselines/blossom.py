"""Maximum-weight matching in general graphs — the blossom algorithm.

A from-scratch implementation of the primal-dual blossom method
(Edmonds 1965 [2 in the paper]; O(n³) formulation following Galil 1986,
in the style popularised by Van Rantwijk's reference implementation).
This is the classical substrate the paper's reference [2] anchors the
whole matching literature on; having it in-tree makes the exact
1–1 comparator (and the node-splitting b-matching reduction in
:mod:`repro.baselines.exact`) independent of networkx, which the test
suite then uses purely as an oracle.

The implementation maintains, per stage:

- vertex/blossom dual variables kept feasible (`slack(k) ≥ 0` for all
  edges, with equality on matched/allowed edges),
- an alternating forest of S-/T-labelled blossoms grown from free
  vertices,
- blossom formation when two S-vertices meet (odd cycle shrinking),
  augmentation when two different trees meet, and the four standard
  dual-update cases otherwise.

Weights may be arbitrary non-negative floats; with float weights the
usual caveat applies (duals stay within float error; the verification
in the tests is exact-value comparison against brute force on small
instances and networkx on larger random ones).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.matching import Matching
from repro.core.weights import WeightTable

__all__ = ["max_weight_matching_blossom", "blossom_mwm"]


def blossom_mwm(edges: Sequence[tuple[int, int, float]], nvertex: int) -> list[int]:
    """Compute a maximum-weight matching.

    Parameters
    ----------
    edges:
        ``(i, j, weight)`` triples, ``i != j``, weights ``>= 0``.
    nvertex:
        Number of vertices.

    Returns
    -------
    list[int]
        ``mate[v]`` = partner of ``v`` or ``-1``.
    """
    if not edges:
        return [-1] * nvertex
    nedge = len(edges)
    for (i, j, w) in edges:
        if i == j or not (0 <= i < nvertex and 0 <= j < nvertex):
            raise ValueError(f"bad edge ({i},{j})")
        if w < 0:
            raise ValueError("blossom_mwm requires non-negative weights")

    maxweight = max(w for (_, _, w) in edges)

    # endpoint p of edge k=p//2: the vertex at that end
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]
    # neighbend[v]: remote endpoints of edges incident to v
    neighbend: list[list[int]] = [[] for _ in range(nvertex)]
    for k, (i, j, _w) in enumerate(edges):
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    mate = [-1] * nvertex  # remote endpoint of matched edge, or -1
    label = [0] * (2 * nvertex)
    labelend = [-1] * (2 * nvertex)
    inblossom = list(range(nvertex))
    blossomparent = [-1] * (2 * nvertex)
    blossomchilds: list = [None] * (2 * nvertex)
    blossombase = list(range(nvertex)) + [-1] * nvertex
    blossomendps: list = [None] * (2 * nvertex)
    bestedge = [-1] * (2 * nvertex)
    blossombestedges: list = [None] * (2 * nvertex)
    unusedblossoms = list(range(nvertex, 2 * nvertex))
    dualvar = [maxweight] * nvertex + [0.0] * nvertex
    allowedge = [False] * nedge
    queue: list[int] = []

    def slack(k: int) -> float:
        (i, j, w) = edges[k]
        return dualvar[i] + dualvar[j] - 2.0 * w

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            for t in blossomchilds[b]:
                if t < nvertex:
                    yield t
                else:
                    yield from blossom_leaves(t)

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        assert label[w] == 0 and label[b] == 0
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            queue.extend(blossom_leaves(b))
        else:  # t == 2: T-blossom; its base's mate becomes S
            base = blossombase[b]
            assert mate[base] >= 0
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w to find a common ancestor (new blossom
        base) or -1 (augmenting path found)."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            assert label[b] == 1
            path.append(b)
            label[b] = 5
            assert labelend[b] == mate[blossombase[b]]
            if labelend[b] == -1:
                v = -1  # reached a root
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]
                assert label[b] == 2
                assert labelend[b] >= 0
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        (v, w, _wt) = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        path: list[int] = []
        endps: list[int] = []
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            assert label[bv] == 2 or (
                label[bv] == 1 and labelend[bv] == mate[blossombase[bv]]
            )
            assert labelend[bv] >= 0
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            assert label[bw] == 2 or (
                label[bw] == 1 and labelend[bw] == mate[blossombase[bw]]
            )
            assert labelend[bw] >= 0
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        assert label[bb] == 1
        blossomchilds[b] = path
        blossomendps[b] = endps
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0.0
        for v2 in blossom_leaves(b):
            if label[inblossom[v2]] == 2:
                queue.append(v2)
            inblossom[v2] = b
        # best-edge bookkeeping for delta-3
        bestedgeto = [-1] * (2 * nvertex)
        for bv2 in path:
            if blossombestedges[bv2] is None:
                nblists = [
                    [p // 2 for p in neighbend[v3]]
                    for v3 in blossom_leaves(bv2)
                ]
            else:
                nblists = [blossombestedges[bv2]]
            for nblist in nblists:
                for k2 in nblist:
                    (i, j, _w2) = edges[k2]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (
                        bj != b
                        and label[bj] == 1
                        and (
                            bestedgeto[bj] == -1
                            or slack(k2) < slack(bestedgeto[bj])
                        )
                    ):
                        bestedgeto[bj] = k2
            blossombestedges[bv2] = None
            bestedge[bv2] = -1
        blossombestedges[b] = [k2 for k2 in bestedgeto if k2 != -1]
        bestedge[b] = -1
        for k2 in blossombestedges[b]:
            if bestedge[b] == -1 or slack(k2) < slack(bestedge[b]):
                bestedge[b] = k2

    def expand_blossom(b: int, endstage: bool) -> None:
        for s in blossomchilds[b]:
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for v in blossom_leaves(s):
                    inblossom[v] = s
        if (not endstage) and label[b] == 2:
            # relabel the path through the former blossom
            assert labelend[b] >= 0
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)
            if j & 1:
                j -= len(blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                label[endpoint[p ^ 1]] = 0
                label[
                    endpoint[blossomendps[b][j - endptrick] ^ endptrick ^ 1]
                ] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            bv = blossomchilds[b][j]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            j += jstep
            while blossomchilds[b][j] != entrychild:
                bv = blossomchilds[b][j]
                if label[bv] == 1:
                    j += jstep
                    continue
                for v in blossom_leaves(bv):
                    if label[v] != 0:
                        break
                if label[v] != 0:
                    assert label[v] == 2
                    assert inblossom[v] == bv
                    label[v] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(v, 2, labelend[v])
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges along the path from v to the base."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)
        if i & 1:
            j -= len(blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        # rotate the child list so the new base comes first
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]
        blossombase[b] = blossombase[blossomchilds[b][0]]
        assert blossombase[b] == v

    def augment_matching(k: int) -> None:
        (v, w, _wt) = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                assert label[bs] == 1
                assert labelend[bs] == mate[blossombase[bs]]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break  # reached a root
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                assert label[bt] == 2
                assert labelend[bt] >= 0
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                assert blossombase[bt] == t
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # ------------------------------------------------------------------
    # main loop: one augmentation per stage
    # ------------------------------------------------------------------
    for _stage in range(nvertex):
        label[:] = [0] * (2 * nvertex)
        bestedge[:] = [-1] * (2 * nvertex)
        for b in range(nvertex, 2 * nvertex):
            blossombestedges[b] = None
        allowedge[:] = [False] * nedge
        queue[:] = []
        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                assert label[inblossom[v]] == 1
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 1e-12:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label[inblossom[w]] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[inblossom[w]] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            assert label[inblossom[w]] == 2
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break
            # dual update
            deltatype = -1
            delta = deltaedge = deltablossom = None
            # type 1: minimum vertex dual (we may leave vertices single)
            deltatype = 1
            delta = min(dualvar[:nvertex])
            # type 2: free vertex to S-vertex edge
            for v in range(nvertex):
                if label[inblossom[v]] == 0 and bestedge[v] != -1:
                    d = slack(bestedge[v])
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = bestedge[v]
            # type 3: S to S edge (different trees or blossoms)
            for b in range(2 * nvertex):
                if (
                    blossomparent[b] == -1
                    and label[b] == 1
                    and bestedge[b] != -1
                ):
                    kslack = slack(bestedge[b])
                    d = kslack / 2.0
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]
            # type 4: T-blossom dual hits zero
            for b in range(nvertex, 2 * nvertex):
                if (
                    blossombase[b] >= 0
                    and blossomparent[b] == -1
                    and label[b] == 2
                    and (deltatype == -1 or dualvar[b] < delta)
                ):
                    delta = dualvar[b]
                    deltatype = 4
                    deltablossom = b
            # apply
            for v in range(nvertex):
                lb = label[inblossom[v]]
                if lb == 1:
                    dualvar[v] -= delta
                elif lb == 2:
                    dualvar[v] += delta
            for b in range(nvertex, 2 * nvertex):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta
            if deltatype == 1:
                break  # optimum reached
            elif deltatype == 2:
                allowedge[deltaedge] = True
                (i, j, _w2) = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i, j = j, i
                assert label[inblossom[i]] == 1
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                (i, j, _w2) = edges[deltaedge]
                assert label[inblossom[i]] == 1
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)
        if not augmented:
            break
        # end of stage: expand S-blossoms with zero dual
        for b in range(nvertex, 2 * nvertex):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    out = [-1] * nvertex
    for v in range(nvertex):
        if mate[v] >= 0:
            out[v] = endpoint[mate[v]]
    for v in range(nvertex):
        assert out[v] == -1 or out[out[v]] == v
    return out


def max_weight_matching_blossom(wt: WeightTable) -> Matching:
    """Exact 1–1 maximum-weight matching of a weight table."""
    edges = [(i, j, wt.weight(i, j)) for (i, j) in wt.edges()]
    mate = blossom_mwm(edges, wt.n)
    matching = Matching(wt.n)
    for v, u in enumerate(mate):
        if u > v:
            matching.add(v, u)
    return matching
