"""Null baseline: uniformly random maximal feasible b-matching."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.greedy import random_order_greedy
from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable, satisfaction_weights

__all__ = ["random_bmatching"]


def random_bmatching(
    ps: PreferenceSystem,
    rng: np.random.Generator,
    wt: Optional[WeightTable] = None,
) -> Matching:
    """A random maximal b-matching of the instance's potential edges.

    Implemented as greedy insertion in uniformly random edge order, so
    the result is always *maximal* (no edge can be added) — the fair
    comparison point for preference-aware algorithms in experiment F1:
    the gap to LID measures what preference-awareness buys beyond mere
    connectivity.
    """
    if wt is None:
        wt = satisfaction_weights(ps)
    matching = random_order_greedy(wt, ps.quotas, rng)
    matching.validate(ps)
    return matching
