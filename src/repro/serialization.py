"""JSON (de)serialisation of instances, matchings and repro files.

Experiments become shareable artefacts: a
:class:`~repro.core.preferences.PreferenceSystem`, a
:class:`~repro.core.weights.WeightTable`, a
:class:`~repro.core.matching.Matching` or a conformance
:class:`~repro.testing.minimise.ConformanceRepro` can be dumped to a
plain-JSON document and reconstructed exactly (rankings and quotas are
integers; weights round-trip through ``repr``-exact floats).

Every dict carries a ``"type"`` tag so files are self-describing;
:func:`load_json` dispatches on it.  The ``conformance_repro`` tag is
delegated to :mod:`repro.testing.minimise` (imported lazily — loading
a plain instance never pulls in the conformance machinery).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.matching import Matching
from repro.core.preferences import PreferenceSystem
from repro.core.weights import WeightTable

__all__ = [
    "to_dict",
    "from_dict",
    "save_json",
    "load_json",
]


def to_dict(obj) -> dict:
    """Serialise a library object to a JSON-compatible dict."""
    if isinstance(obj, PreferenceSystem):
        return {
            "type": "preference_system",
            "rankings": [list(obj.preference_list(i)) for i in obj.nodes()],
            "quotas": list(obj.quotas),
        }
    if isinstance(obj, WeightTable):
        return {
            "type": "weight_table",
            "n": obj.n,
            "edges": [[i, j, w] for (i, j), w in sorted(obj.items())],
        }
    if isinstance(obj, Matching):
        return {
            "type": "matching",
            "n": obj.n,
            "edges": [list(e) for e in obj.edges()],
        }
    from repro.testing.minimise import ConformanceRepro, repro_to_dict

    if isinstance(obj, ConformanceRepro):
        return repro_to_dict(obj)
    raise TypeError(f"cannot serialise {type(obj).__name__}")


def from_dict(data: dict):
    """Reconstruct a library object from :func:`to_dict` output."""
    kind = data.get("type")
    if kind == "preference_system":
        quotas = data["quotas"]
        # PreferenceSystem clamps quotas and zeroes isolated nodes; the
        # stored values are already post-normalisation, but isolated
        # nodes carry quota 0 which the constructor rejects — map back
        # to the neutral 1 (re-normalised to 0 on construction).
        fixed = [q if q >= 1 else 1 for q in quotas]
        return PreferenceSystem(
            {i: lst for i, lst in enumerate(data["rankings"])}, fixed
        )
    if kind == "weight_table":
        return WeightTable.from_edge_weights(
            [(int(i), int(j), float(w)) for i, j, w in data["edges"]],
            int(data["n"]),
        )
    if kind == "matching":
        return Matching(
            int(data["n"]), [(int(i), int(j)) for i, j in data["edges"]]
        )
    if kind == "conformance_repro":
        from repro.testing.minimise import repro_from_dict

        return repro_from_dict(data)
    raise ValueError(f"unknown or missing type tag: {kind!r}")


def save_json(obj, path: str | Path) -> None:
    """Serialise ``obj`` to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(obj), indent=1))


def load_json(path: str | Path):
    """Load any object saved by :func:`save_json`."""
    return from_dict(json.loads(Path(path).read_text()))
