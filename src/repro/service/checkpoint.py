"""Crash-consistent checkpoints for the matching service.

Format: one JSON file per snapshot, ``checkpoint-<seq:08d>.json``, where
``seq`` is the trace cursor (number of events applied).  Each file is
self-describing::

    {
      "version": 1,
      "seq": 120,
      "fingerprint": "ab12…",      # WorkloadTrace.fingerprint()
      "state": { … },              # MatchingService.snapshot()
      "state_hash": "…64 hex…"     # sha256 of canonical state JSON
    }

Crash consistency comes from the classic write-to-temp + ``os.replace``
dance (the same idiom as :func:`repro.telemetry.sink.write_jsonl` and
the grid store): a checkpoint either exists completely or not at all as
far as any reader is concerned.  A process killed mid-write leaves at
worst a ``.tmp`` turd that :func:`latest_checkpoint` ignores; a file
truncated by the filesystem (torn write on a crashed host) fails JSON
parsing or the hash check and is likewise skipped, falling back to the
previous intact checkpoint.

Restores are paranoid: the version must match, the trace fingerprint
must match (a service can never resume one trace and silently replay a
different one), and the state hash must match the re-serialised state.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Optional

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "latest_checkpoint",
    "load_checkpoint",
    "write_checkpoint",
]

CHECKPOINT_VERSION = 1

_NAME_RE = re.compile(r"^checkpoint-(\d{8})\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be used (version/trace mismatch)."""


def _state_hash(state: dict) -> str:
    canon = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def write_checkpoint(
    directory: "str | Path",
    seq: int,
    fingerprint: str,
    state: dict,
    keep: int = 3,
) -> Path:
    """Atomically persist one snapshot; returns the final path.

    Retains the newest ``keep`` checkpoints and prunes older ones (a
    resume only ever needs the latest intact file; the margin covers a
    torn write of the newest).
    """
    if seq < 0:
        raise ValueError(f"seq must be >= 0, got {seq}")
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "seq": seq,
        "fingerprint": fingerprint,
        "state": state,
        "state_hash": _state_hash(state),
    }
    final = directory / f"checkpoint-{seq:08d}.json"
    tmp = final.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(tmp, final)
    for stale in _checkpoint_files(directory)[:-keep]:
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - concurrent pruning race
            pass
    return final


def _checkpoint_files(directory: Path) -> list[Path]:
    out = []
    if directory.is_dir():
        for p in directory.iterdir():
            if _NAME_RE.match(p.name):
                out.append(p)
    return sorted(out)


def latest_checkpoint(directory: "str | Path") -> Optional[Path]:
    """Newest checkpoint that parses and passes its hash; else ``None``.

    Torn or corrupt files are skipped, not fatal — that is the whole
    point of keeping more than one.
    """
    for path in reversed(_checkpoint_files(Path(directory))):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or "state" not in payload:
            continue
        if payload.get("state_hash") != _state_hash(payload["state"]):
            continue
        return path
    return None


def load_checkpoint(path: "str | Path", fingerprint: Optional[str] = None) -> dict:
    """Load and verify one checkpoint file.

    Returns the full payload dict.  Raises :class:`CheckpointError` on
    version mismatch, hash mismatch, or (when ``fingerprint`` is given)
    a trace-fingerprint mismatch.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r},"
            f" expected {CHECKPOINT_VERSION}"
        )
    if payload.get("state_hash") != _state_hash(payload.get("state", {})):
        raise CheckpointError(f"checkpoint {path} failed its state hash")
    if fingerprint is not None and payload.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} pins trace {payload.get('fingerprint')!r}"
            f" but the service is replaying {fingerprint!r}"
        )
    return payload
