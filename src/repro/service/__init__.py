"""Long-lived matching service: incremental repair under churn (§7).

Every other pipeline in this repo solves one static instance and exits;
the paper's setting is an *overlay*, where peers join, leave, crash and
change preferences continuously.  This package keeps a b-matching alive
through that churn:

- :mod:`repro.service.events` — deterministic seeded workload traces
  (Poisson arrivals, flash crowds, diurnal load, adversarial join/leave
  storms built on :mod:`repro.distsim.failures` schedules);
- :mod:`repro.service.service` — :class:`MatchingService`, the
  long-lived engine: per churn event it recomputes only the affected
  region (budgeted :func:`~repro.overlay.churn.greedy_repair`
  warm-started from the surviving matching, weights served from the
  incremental :class:`~repro.overlay.churn.WeightCache`) and falls back
  to a full re-solve only when the repair budget or an invariant trips;
- :mod:`repro.service.guards` — runtime invariant guards (capacity,
  mutual consent, eq.-9 weight consistency) that demote the service to
  a degraded full-re-solve mode instead of serving a corrupt matching;
- :mod:`repro.service.checkpoint` — crash-consistent versioned
  snapshots of (matching, weight cache, event cursor): a killed service
  resumes and replays to a state bit-identical to an uninterrupted run;
- :mod:`repro.service.differential` — the conformance harness checking
  every repaired state against a from-scratch
  :func:`~repro.core.lid.solve_lid` on the same live instance;
- :mod:`repro.service.runner` — drive a service through a trace with
  checkpointing, differential sampling and the kill-and-resume
  bit-identity check behind ``python -m repro serve --smoke``.
"""

from repro.service.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.differential import DifferentialReport, conformance_check
from repro.service.events import (
    WORKLOADS,
    ChurnEvent,
    WorkloadTrace,
    diurnal_trace,
    flash_crowd_trace,
    make_trace,
    poisson_trace,
    storm_trace,
)
from repro.service.guards import GuardReport, ServiceGuard
from repro.service.runner import (
    ServiceConfig,
    ServiceRunResult,
    build_service,
    kill_and_resume_check,
    run_service,
)
from repro.service.service import EventOutcome, MatchingService, ServiceCorruption

__all__ = [
    "ChurnEvent",
    "CheckpointError",
    "DifferentialReport",
    "EventOutcome",
    "GuardReport",
    "MatchingService",
    "ServiceConfig",
    "ServiceCorruption",
    "ServiceGuard",
    "ServiceRunResult",
    "WORKLOADS",
    "WorkloadTrace",
    "build_service",
    "conformance_check",
    "diurnal_trace",
    "flash_crowd_trace",
    "kill_and_resume_check",
    "latest_checkpoint",
    "load_checkpoint",
    "make_trace",
    "poisson_trace",
    "run_service",
    "storm_trace",
    "write_checkpoint",
]
