"""The long-lived matching engine: :class:`MatchingService`.

:class:`~repro.overlay.churn.DynamicOverlay` already keeps the unique
LIC matching alive across single churn events.  The service extends it
into something deployable:

- **round-budgeted repair** — every event is repaired by a budgeted
  :func:`~repro.overlay.churn.greedy_repair` warm-started from the
  surviving matching; when the budget trips, the service either falls
  back to a full re-solve (``on_budget="resolve"``, the default — the
  served matching stays exactly LIC) or serves the feasible truncated
  matching and lets the differential harness bound the gap
  (``on_budget="defer"``, the almost-stable regime of Floréen et al.);
- **event application** — :meth:`apply` resolves a self-contained
  :class:`~repro.service.events.ChurnEvent` against the live overlay,
  deterministically: victims index the sorted alive-id list with the
  event's pre-drawn entropy, joiners derive their attachment points
  from a generator seeded with it;
- **invariant guards and the degraded-mode ladder** — after every event
  a :class:`~repro.service.guards.ServiceGuard` pass checks capacity,
  mutual consent and (sampled) eq.-9 weight consistency.  A violation
  demotes the service to *degraded* mode: the weight cache is dropped,
  the matching fully re-solved, and every event is answered by a full
  re-solve until ``degraded_recovery`` consecutive clean events restore
  incremental mode.  A violation that survives the full re-solve is
  unrecoverable and raises :class:`ServiceCorruption`;
- **snapshots** — :meth:`snapshot` / :meth:`restore` round-trip the
  entire mutable state (peers, adjacency, partners, weight cache, dirty
  set, counters, ladder position) through plain JSON types, exactly;
  :mod:`repro.service.checkpoint` wraps them in versioned atomic files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.core.fast import FastInstance
from repro.core.fast_lid import lid_matching_fast
from repro.core.truncation import validate_max_rounds
from repro.overlay.churn import (
    DynamicOverlay,
    RepairStats,
    WeightCache,
    greedy_repair,
)
from repro.overlay.peer import Peer
from repro.service.events import ChurnEvent
from repro.service.guards import GuardReport, ServiceGuard

__all__ = ["COUNTERS", "EventOutcome", "MatchingService", "ServiceCorruption"]

#: every counter the service maintains; checkpointed so a resumed run
#: reports bit-identical totals
COUNTERS = (
    "events",
    "joins",
    "leaves",
    "crashes",
    "updates",
    "skipped",
    "resolutions",
    "stale_dropped",
    "truncated_repairs",
    "full_resolves",
    "guard_violations",
    "degraded_entries",
    "weights_reused",
    "weights_recomputed",
)

MODES = ("incremental", "degraded")


class ServiceCorruption(RuntimeError):
    """An invariant violation survived the degraded-mode full re-solve."""


@dataclass
class EventOutcome:
    """What one :meth:`MatchingService.apply` call did."""

    seq: int
    kind: str
    applied: bool
    peer_id: Optional[int]
    stats: Optional[RepairStats]
    guard_ok: bool
    mode: str
    n: int


class MatchingService(DynamicOverlay):
    """A :class:`DynamicOverlay` hardened for unattended operation.

    Parameters
    ----------
    repair_budget:
        Max blocking-edge resolutions per incremental repair; ``None``
        means unbounded (repair always runs to the exact LIC fixpoint).
    on_budget:
        ``"resolve"`` (default) falls back to a full re-solve when a
        repair truncates; ``"defer"`` serves the feasible truncated
        matching (almost-stable mode).
    weight_check_every:
        Run the (compaction-priced) eq.-9 weight-consistency guard on
        every k-th event; structural guards run on every event.
    degraded_recovery:
        Consecutive clean events required to climb back from degraded
        to incremental mode.
    warmstart_rounds:
        When set, every full re-solve is warm-started from a
        ``max_rounds``-truncated LID run (the shared contract of
        :mod:`repro.core.truncation`): the k-round feasible partial
        matching — a *subset* of the LIC fixpoint, by lock nesting —
        seeds :func:`~repro.overlay.churn.greedy_repair`, which closes
        the gap to the exact fixpoint.  The served matching is
        identical to a cold solve (the fixpoint is unique); only the
        work changes, quantified in :attr:`last_warmstart`.
    """

    def __init__(
        self,
        topology,
        peers: list[Peer],
        metric,
        backend: str = "fast",
        repair_budget: Optional[int] = None,
        on_budget: str = "resolve",
        weight_check_every: int = 8,
        degraded_recovery: int = 8,
        guard: Optional[ServiceGuard] = None,
        warmstart_rounds: Optional[int] = None,
    ):
        if on_budget not in ("resolve", "defer"):
            raise ValueError(
                f"on_budget must be 'resolve' or 'defer', got {on_budget!r}"
            )
        if repair_budget is not None and repair_budget < 0:
            raise ValueError(f"repair_budget must be >= 0, got {repair_budget}")
        if weight_check_every < 1:
            raise ValueError(
                f"weight_check_every must be >= 1, got {weight_check_every}"
            )
        if degraded_recovery < 1:
            raise ValueError(
                f"degraded_recovery must be >= 1, got {degraded_recovery}"
            )
        self.repair_budget = repair_budget
        self.on_budget = on_budget
        self.weight_check_every = weight_check_every
        self.degraded_recovery = degraded_recovery
        self.warmstart_rounds = validate_max_rounds(warmstart_rounds)
        #: repair accounting of the most recent warm-started re-solve
        #: (``None`` until one runs; transient — not checkpointed, since
        #: it never affects the served state)
        self.last_warmstart: Optional[RepairStats] = None
        self.guard = guard if guard is not None else ServiceGuard()
        self.mode = "incremental"
        self._cooldown = 0
        self.truncated_since_sync = 0
        self.counters: dict[str, int] = {k: 0 for k in COUNTERS}
        super().__init__(topology, peers, metric, backend=backend)

    # -- repair --------------------------------------------------------

    def full_rematch(self) -> None:
        if self.warmstart_rounds is None:
            super().full_rematch()
        else:
            self._warmstart_rematch()
        # a from-scratch solve is exactly LIC: any almost-stable debt
        # accumulated by deferred truncations is repaid here
        self.truncated_since_sync = 0

    def _warmstart_rematch(self) -> None:
        """Full re-solve seeded by a round-truncated LID run.

        The k-wave truncated matching is feasible and nested inside the
        LIC fixpoint (locks are permanent), so the closing repair only
        adds edges; because the no-weighted-blocking-edge fixpoint is
        unique, the result is exactly the cold solve's matching.
        """
        ps, ids, _ = self._compact_instance()
        fi = FastInstance.from_preference_system(ps)
        res = lid_matching_fast(fi, max_rounds=self.warmstart_rounds)
        matching = res.matching
        self.last_warmstart = greedy_repair(
            fi.weight_table(), list(ps.quotas), matching, range(ps.n)
        )
        if self._wcache is not None:
            self._wcache.seed(fi, ids)
            self._weight_dirty.clear()
        self._store_matching(matching, ids)

    def _repair(self, dirty_external: "set[int] | Iterable[int]") -> RepairStats:
        if self.mode == "degraded":
            # distrust incremental state wholesale until the ladder
            # releases us
            self.full_rematch()
            self.counters["full_resolves"] += 1
            return RepairStats()
        expanded = set(dirty_external)
        for pid in dirty_external:
            expanded.update(self._adj.get(pid, ()))
        ps, ids, index = self._compact_instance()
        wt, reused, recomputed = self._weights(ps, ids)
        matching = self._matching_compact(index)
        dirty = {index[pid] for pid in expanded if pid in index}
        stats = greedy_repair(
            wt,
            list(ps.quotas),
            matching,
            dirty,
            budget=self.repair_budget,
        )
        stats.weights_reused = reused
        stats.weights_recomputed = recomputed
        self.counters["resolutions"] += stats.resolutions
        self.counters["stale_dropped"] += stats.stale_dropped
        self.counters["weights_reused"] += reused
        self.counters["weights_recomputed"] += recomputed
        if stats.truncated:
            self.counters["truncated_repairs"] += 1
            if self.on_budget == "resolve":
                self.full_rematch()
                self.counters["full_resolves"] += 1
                return stats
            self.truncated_since_sync += 1
        matching.validate(ps)
        self._store_matching(matching, ids)
        return stats

    # -- churn beyond join/leave ---------------------------------------

    def update_position(
        self, peer_id: int, position, repair: bool = True
    ) -> RepairStats:
        """Move a peer; its whole neighbourhood re-ranks.

        A position change re-scores ``peer_id`` in every neighbour's
        list, which can shift the ranks of the neighbours' *other*
        candidates too — so every edge incident to ``{peer_id} ∪
        N(peer_id)`` is weight-dirty, not just the moved peer's own.
        """
        if peer_id not in self._peers:
            raise KeyError(f"unknown peer {peer_id}")
        self._peers[peer_id].position = np.asarray(position, dtype=float)
        dirty = {peer_id} | self._adj[peer_id]
        self._weight_dirty |= dirty
        if not repair:
            return RepairStats()
        return self._repair(dirty_external=dirty)

    def crash(self, peer_id: int, repair: bool = True) -> RepairStats:
        """An ungraceful departure.

        The state transition is identical to :meth:`leave` — the
        overlay only ever observes absence — but callers account for it
        separately (see the ``crashes`` counter).
        """
        return self.leave(peer_id, repair=repair)

    # -- event application ---------------------------------------------

    def apply(self, event: ChurnEvent) -> EventOutcome:
        """Apply one trace event; deterministic in ``(event, state)``."""
        self.counters["events"] += 1
        alive = self.active_ids()
        applied = True
        stats: Optional[RepairStats] = None
        pid: Optional[int] = None
        if event.kind == "join":
            peer = Peer(
                peer_id=-1,
                position=np.asarray(event.position, dtype=float),
                quota=max(1, event.quota),
            )
            k = min(max(0, event.degree), len(alive))
            if k > 0:
                rng = np.random.default_rng(event.r)
                picks = rng.choice(len(alive), size=k, replace=False)
                neigh = [alive[int(i)] for i in sorted(picks)]
            else:
                neigh = []
            pid, stats = self.join(peer, neigh)
            self.counters["joins"] += 1
        elif event.kind in ("leave", "crash"):
            if not alive:
                applied = False
            else:
                pid = alive[event.r % len(alive)]
                stats = self.crash(pid) if event.kind == "crash" else self.leave(pid)
                self.counters["crashes" if event.kind == "crash" else "leaves"] += 1
        elif event.kind == "update":
            if not alive:
                applied = False
            else:
                pid = alive[event.r % len(alive)]
                stats = self.update_position(pid, event.position)
                self.counters["updates"] += 1
        else:  # pragma: no cover - ChurnEvent validates kinds
            raise ValueError(f"unknown event kind {event.kind!r}")
        if not applied:
            self.counters["skipped"] += 1
        guard_ok = self._guard_pass()
        return EventOutcome(
            seq=event.seq,
            kind=event.kind,
            applied=applied,
            peer_id=pid,
            stats=stats,
            guard_ok=guard_ok,
            mode=self.mode,
            n=self.n,
        )

    # -- the invariant → degraded-mode ladder --------------------------

    def _guard_pass(self) -> bool:
        report = GuardReport()
        self.guard.check_structure(self, report)
        if self.counters["events"] % self.weight_check_every == 0:
            self.guard.check_weights(self, report)
        if report.ok:
            if self.mode == "degraded":
                self._cooldown -= 1
                if self._cooldown <= 0:
                    self.mode = "incremental"
            return True
        self._enter_degraded(report)
        return False

    def _enter_degraded(self, report: GuardReport) -> None:
        self.counters["guard_violations"] += len(report.violations)
        if self.mode != "degraded":
            self.counters["degraded_entries"] += 1
        self.mode = "degraded"
        self._cooldown = self.degraded_recovery
        if self._wcache is not None:
            # the cache is a suspect in any corruption: rebuild it from
            # scratch along with the matching
            self._wcache._w.clear()
            self._weight_dirty.clear()
        self.full_rematch()
        self.counters["full_resolves"] += 1
        recheck = GuardReport()
        self.guard.check_structure(self, recheck)
        self.guard.check_weights(self, recheck)
        if not recheck.ok:
            raise ServiceCorruption(
                "invariant violations survived a full re-solve: "
                + "; ".join(recheck.violations[:5])
            )

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict:
        """The full mutable state as plain JSON types.

        Floats survive a JSON round-trip exactly in Python, so a
        restored service is *bit*-identical, not approximately equal.
        """
        return {
            "backend": self.backend,
            "next_id": self._next_id,
            "mode": self.mode,
            "cooldown": self._cooldown,
            "truncated_since_sync": self.truncated_since_sync,
            "guard_cursor": self.guard._weight_cursor,
            "counters": dict(self.counters),
            "peers": [
                {
                    "peer_id": p.peer_id,
                    "position": [float(x) for x in p.position],
                    "interests": [float(x) for x in p.interests],
                    "bandwidth": float(p.bandwidth),
                    "reliability": float(p.reliability),
                    "quota": int(p.quota),
                }
                for _, p in sorted(self._peers.items())
            ],
            "adjacency": {
                str(pid): sorted(self._adj[pid]) for pid in sorted(self._adj)
            },
            "partners": {
                str(pid): sorted(v) for pid, v in sorted(self._partners.items())
            },
            "weight_dirty": sorted(self._weight_dirty),
            "weights": (
                None
                if self._wcache is None
                else [
                    [a, b, w] for (a, b), w in sorted(self._wcache._w.items())
                ]
            ),
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        metric,
        repair_budget: Optional[int] = None,
        on_budget: str = "resolve",
        weight_check_every: int = 8,
        degraded_recovery: int = 8,
        guard: Optional[ServiceGuard] = None,
        warmstart_rounds: Optional[int] = None,
    ) -> "MatchingService":
        """Rebuild a service from :meth:`snapshot` output.

        The metric is *not* checkpointed — it must be reconstructed by
        the caller from its own parameters (the runner derives it from
        the service config seed), exactly as at first construction.
        """
        svc = cls.__new__(cls)
        svc.backend = str(state["backend"])
        svc.repair_budget = repair_budget
        svc.on_budget = on_budget
        svc.weight_check_every = weight_check_every
        svc.degraded_recovery = degraded_recovery
        svc.warmstart_rounds = validate_max_rounds(warmstart_rounds)
        svc.last_warmstart = None
        svc.guard = guard if guard is not None else ServiceGuard()
        svc.guard._weight_cursor = int(state["guard_cursor"])
        svc.mode = str(state["mode"])
        if svc.mode not in MODES:
            raise ValueError(f"corrupt snapshot: unknown mode {svc.mode!r}")
        svc._cooldown = int(state["cooldown"])
        svc.truncated_since_sync = int(state["truncated_since_sync"])
        svc.counters = {k: int(state["counters"].get(k, 0)) for k in COUNTERS}
        svc.metric = metric
        svc._peers = {
            int(rec["peer_id"]): Peer(
                peer_id=int(rec["peer_id"]),
                position=np.asarray(rec["position"], dtype=float),
                interests=np.asarray(rec["interests"], dtype=float),
                bandwidth=float(rec["bandwidth"]),
                reliability=float(rec["reliability"]),
                quota=int(rec["quota"]),
            )
            for rec in state["peers"]
        }
        svc._adj = {
            int(pid): {int(q) for q in qs}
            for pid, qs in state["adjacency"].items()
        }
        svc._partners = {
            int(pid): {int(q) for q in qs}
            for pid, qs in state["partners"].items()
        }
        svc._weight_dirty = {int(pid) for pid in state["weight_dirty"]}
        svc._next_id = int(state["next_id"])
        svc._wcache = None
        if state["weights"] is not None:
            svc._wcache = WeightCache()
            svc._wcache._w = {
                (int(a), int(b)): float(w) for a, b, w in state["weights"]
            }
        return svc
