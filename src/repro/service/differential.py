"""Differential conformance harness for the matching service.

The service's incremental state is only trustworthy because we can
check it, at any moment, against a from-scratch authority:

1. compact the live overlay into a fresh
   :class:`~repro.core.prefs.PreferenceSystem`;
2. run the :mod:`repro.testing` oracles (quota, edge locality, mutual
   consistency) on the served matching;
3. rebuild eq.-9 weights from scratch and count
   :func:`~repro.core.analysis.weighted_blocking_edges`;
4. re-solve the instance with :func:`~repro.core.lid.solve_lid` and
   compare edge sets.

In the default ``on_budget="resolve"`` regime the served matching must
equal the from-scratch LIC/LID matching *exactly* (uniqueness, Lemma 2)
and have zero blocking edges.  In the deferred regime
(``on_budget="defer"``) a budget-truncated repair legitimately leaves a
bounded blocking-edge residue until the next full sync — the report
then records the gap instead of failing, as long as the matching is
feasible and the truncation debt is actually outstanding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis import weighted_blocking_edges
from repro.core.lid import solve_lid
from repro.core.weights import satisfaction_weights
from repro.testing.oracles import (
    check_edge_locality,
    check_mutual_consistency,
    check_quota,
)

__all__ = ["DifferentialReport", "conformance_check"]


@dataclass
class DifferentialReport:
    """Outcome of one conformance check against the fresh solve."""

    n: int
    oracle_violations: list[str] = field(default_factory=list)
    blocking_edges: int = 0
    matches_fresh_solve: bool = True
    missing_edges: int = 0
    extra_edges: int = 0
    truncation_debt: int = 0

    @property
    def ok(self) -> bool:
        """Exact conformance, or a truncation-explained bounded gap."""
        if self.oracle_violations:
            return False
        if self.matches_fresh_solve and self.blocking_edges == 0:
            return True
        # a gap is acceptable only while deferred-truncation debt is
        # outstanding — and a budget of b resolutions skipped per
        # truncated repair bounds the residue
        return self.truncation_debt > 0


def conformance_check(service, backend: str = "fast") -> DifferentialReport:
    """Check a service's served state against a from-scratch solve.

    Expensive (full weight rebuild + full LID solve) — callers sample
    it, they do not run it per event.
    """
    ps, ids, index = service._compact_instance()
    report = DifferentialReport(n=len(ids))
    if not ids:
        return report
    matching = service._matching_compact(index)
    for oracle in (check_quota, check_edge_locality, check_mutual_consistency):
        oracle_report = oracle(ps, matching)
        report.oracle_violations.extend(str(v) for v in oracle_report.violations)
    wt = satisfaction_weights(ps)
    report.blocking_edges = len(
        weighted_blocking_edges(wt, list(ps.quotas), matching)
    )
    fresh, _ = solve_lid(ps, backend=backend)
    served = matching.edge_set()
    authority = fresh.matching.edge_set()
    report.missing_edges = len(authority - served)
    report.extra_edges = len(served - authority)
    report.matches_fresh_solve = served == authority
    report.truncation_debt = getattr(service, "truncated_since_sync", 0)
    return report
