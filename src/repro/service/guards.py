"""Runtime invariant guards for the long-lived matching service.

The service must never *serve* a corrupt matching: the robustness
contract is checked after every applied event, not just at the end of a
trace (the same per-transition philosophy as
:class:`repro.distsim.invariants.InvariantMonitor`, lifted to the
service's external-id state).  Checks:

- **capacity** — no peer holds more partners than its quota
  (:func:`repro.testing.oracles.check_quota` over the compact view is
  the slow-path oracle; the guard checks the same property directly on
  the external partner sets in O(n));
- **mutual consent** — every matched edge joins two live peers that are
  overlay neighbours, and partnership is symmetric;
- **eq.-9 weight consistency** — a deterministic sample of cached
  weights must equal a fresh
  :func:`~repro.core.satisfaction.delta_static` recomputation *exactly*
  (the cache uses the same scalar arithmetic, so any drift is
  corruption, not rounding).

A violation does not raise here: the service reads the
:class:`GuardReport` and demotes itself to degraded full-re-solve mode
(see ``docs/robustness.md`` for the ladder).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.satisfaction import delta_static

__all__ = ["GuardReport", "ServiceGuard"]


@dataclass
class GuardReport:
    """Outcome of one guard pass."""

    checked_peers: int = 0
    checked_weights: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class ServiceGuard:
    """Per-event invariant checks over a service's external-id state.

    Parameters
    ----------
    weight_sample:
        Cap on the number of cached edge weights recomputed per pass
        (edges are taken in sorted key order starting at a cursor that
        advances every pass, so successive passes sweep the whole
        cache).  ``0`` disables the weight check.
    """

    def __init__(self, weight_sample: int = 32):
        if weight_sample < 0:
            raise ValueError(f"weight_sample must be >= 0, got {weight_sample}")
        self.weight_sample = weight_sample
        self._weight_cursor = 0

    # -- structural invariants -----------------------------------------

    def check_structure(self, service, report: GuardReport) -> None:
        """Capacity, liveness and mutual consent over the partner sets."""
        peers = service._peers
        adj = service._adj
        partners = service._partners
        for pid, mine in partners.items():
            report.checked_peers += 1
            peer = peers.get(pid)
            if peer is None:
                report.violations.append(
                    f"liveness: departed peer {pid} still holds partners"
                )
                continue
            if len(mine) > peer.quota:
                report.violations.append(
                    f"capacity: peer {pid} holds {len(mine)} partners"
                    f" (quota {peer.quota})"
                )
            for q in mine:
                if q not in peers:
                    report.violations.append(
                        f"liveness: peer {pid} matched to departed peer {q}"
                    )
                    continue
                if q not in adj[pid]:
                    report.violations.append(
                        f"mutual consent: peer {pid} matched to"
                        f" non-neighbour {q}"
                    )
                if pid not in partners.get(q, ()):
                    report.violations.append(
                        f"mutual consent: {pid} ~ {q} is asymmetric"
                    )

    # -- eq.-9 weight consistency --------------------------------------

    def check_weights(self, service, report: GuardReport) -> None:
        """Sampled exact recomputation of the incremental weight cache.

        Uses the current compact instance, so it also catches a cache
        whose entries survived a preference change they should not
        have.  A no-op on the reference backend (no cache).
        """
        if self.weight_sample == 0 or service._wcache is None:
            return
        cached = service._wcache._w
        if not cached:
            return
        if service._weight_dirty:
            # weights incident to dirty peers are *expected* stale until
            # the next refresh; skip the pass rather than false-alarm
            return
        ps, ids, index = service._compact_instance()
        keys = sorted(cached)
        start = self._weight_cursor % len(keys)
        take = min(self.weight_sample, len(keys))
        self._weight_cursor += take
        for off in range(take):
            pa, pb = keys[(start + off) % len(keys)]
            if pa not in index or pb not in index:
                report.violations.append(
                    f"weight cache: entry ({pa}, {pb}) names a departed peer"
                )
                continue
            a, b = index[pa], index[pb]
            if not ps.has_edge(a, b):
                report.violations.append(
                    f"weight cache: entry ({pa}, {pb}) is not an instance edge"
                )
                continue
            report.checked_weights += 1
            expect = delta_static(ps, a, b) + delta_static(ps, b, a)
            if cached[(pa, pb)] != expect:
                report.violations.append(
                    f"weight drift: cached w({pa},{pb})={cached[(pa, pb)]!r}"
                    f" but eq. 9 gives {expect!r}"
                )

    # ------------------------------------------------------------------

    def check(self, service) -> GuardReport:
        """One full guard pass; never raises."""
        report = GuardReport()
        self.check_structure(service, report)
        self.check_weights(service, report)
        return report
