"""Drive a :class:`MatchingService` through a workload trace.

The runner owns everything around the service: trace generation,
periodic checkpoints, sampled differential conformance checks, the
final report, and the kill-and-resume bit-identity check that backs the
``service-smoke`` CI gate.

Determinism contract
--------------------
Every field of the run report is deterministic in the
:class:`ServiceConfig` except those with the reserved
machine-dependent suffixes (``_ms``, ``_per_s``, ``_x`` — see
:data:`repro.telemetry.sink.NONDETERMINISTIC_SUFFIXES`).  A run killed
at any event and resumed from its last checkpoint produces a report
whose deterministic subset is byte-identical to an uninterrupted run —
:func:`kill_and_resume_check` asserts exactly that.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Optional

from repro.experiments.instances import topology_for_family
from repro.overlay.metrics import DistanceMetric, PrivateTasteMetric
from repro.overlay.peer import generate_peers
from repro.service.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.differential import DifferentialReport, conformance_check
from repro.service.events import WorkloadTrace, make_trace
from repro.service.service import MatchingService
from repro.telemetry.sink import canonical_fields
from repro.utils.rng import spawn_rng

__all__ = [
    "ServiceConfig",
    "ServiceRunResult",
    "build_service",
    "kill_and_resume_check",
    "run_service",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a service run is deterministic in."""

    n: int = 100
    quota: int = 3
    family: str = "geo"
    seed: int = 0
    events: int = 200
    workload: str = "poisson"
    backend: str = "fast"
    blend: float = 0.5
    repair_budget: Optional[int] = None
    on_budget: str = "resolve"
    weight_check_every: int = 8
    degraded_recovery: int = 8
    checkpoint_every: int = 25
    differential_every: int = 50
    #: warm-start every full re-solve from a k-round-truncated LID run
    #: (None = cold solves); the served matching is identical either way
    warmstart_rounds: Optional[int] = None

    def __post_init__(self):
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.warmstart_rounds is not None and self.warmstart_rounds < 0:
            raise ValueError(
                f"warmstart_rounds must be >= 0, got {self.warmstart_rounds}"
            )
        if self.events < 0:
            raise ValueError(f"events must be >= 0, got {self.events}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.differential_every < 0:
            raise ValueError(
                f"differential_every must be >= 0, got {self.differential_every}"
            )

    def trace(self) -> WorkloadTrace:
        return make_trace(self.workload, self.events, self.seed)

    def metric(self):
        """The service metric, reconstructible from the config alone.

        A distance base blended with peer-private taste: position
        updates genuinely re-rank neighbourhoods (pure taste would make
        ``update`` events no-ops), while taste keeps preferences
        heterogeneous enough to exercise the paper's weight machinery.
        """
        if self.blend >= 1.0:
            return PrivateTasteMetric(self.seed, blend=1.0)
        return PrivateTasteMetric(self.seed, base=DistanceMetric(), blend=self.blend)


@dataclass
class ServiceRunResult:
    """A finished (or killed) run: the report plus live objects."""

    report: dict
    service: MatchingService
    differentials: list[DifferentialReport] = field(default_factory=list)


def build_service(config: ServiceConfig) -> MatchingService:
    """Construct the initial overlay + service for a config."""
    rng = spawn_rng(config.seed, "service-init", config.family, str(config.n))
    topology = topology_for_family(config.family, config.n, rng)
    peers = generate_peers(
        config.n, rng, quota_range=(config.quota, config.quota)
    )
    return MatchingService(
        topology,
        peers,
        config.metric(),
        backend=config.backend,
        repair_budget=config.repair_budget,
        on_budget=config.on_budget,
        weight_check_every=config.weight_check_every,
        degraded_recovery=config.degraded_recovery,
        warmstart_rounds=config.warmstart_rounds,
    )


def _matching_sha(service: MatchingService) -> str:
    """12-hex digest of the served matching in external-id space."""
    edges = sorted(
        (pid, q)
        for pid, partners in service._partners.items()
        for q in partners
        if pid < q
    )
    canon = json.dumps(edges, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


def run_service(
    config: ServiceConfig,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
    kill_after: Optional[int] = None,
    telemetry=None,
) -> ServiceRunResult:
    """Replay the config's trace through a service.

    Parameters
    ----------
    checkpoint_dir:
        When given, write an initial snapshot plus one every
        ``config.checkpoint_every`` events (atomic, versioned).
    resume:
        Restore from the newest intact checkpoint in ``checkpoint_dir``
        (trace fingerprint is verified) and replay only the remaining
        events.
    kill_after:
        Stop abruptly once this many events have been applied — *no*
        final checkpoint, simulating a crash that loses everything
        since the last periodic snapshot.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; the replay loop
        runs inside a ``service-replay`` span when given.
    """
    trace = config.trace()
    fingerprint = trace.fingerprint()
    metric = config.metric()
    if resume:
        if checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        path = latest_checkpoint(checkpoint_dir)
        if path is None:
            raise CheckpointError(f"no usable checkpoint under {checkpoint_dir}")
        payload = load_checkpoint(path, fingerprint=fingerprint)
        service = MatchingService.restore(
            payload["state"],
            metric,
            repair_budget=config.repair_budget,
            on_budget=config.on_budget,
            weight_check_every=config.weight_check_every,
            degraded_recovery=config.degraded_recovery,
            warmstart_rounds=config.warmstart_rounds,
        )
        start_seq = int(payload["seq"])
        resumed_from: Optional[int] = start_seq
    else:
        service = build_service(config)
        start_seq = 0
        resumed_from = None
        if checkpoint_dir is not None:
            write_checkpoint(checkpoint_dir, 0, fingerprint, service.snapshot())
    stop_at = len(trace.events)
    if kill_after is not None:
        stop_at = min(max(kill_after, start_seq), stop_at)
    differentials: list[DifferentialReport] = []
    repair_s: list[float] = []
    full_solve_s: list[float] = []
    span = telemetry.span("service-replay") if telemetry is not None else None
    if span is not None:
        span.__enter__()
    t0 = perf_counter()
    try:
        for event in trace.events[start_seq:stop_at]:
            e0 = perf_counter()
            service.apply(event)
            repair_s.append(perf_counter() - e0)
            done = event.seq + 1
            if checkpoint_dir is not None and done % config.checkpoint_every == 0:
                write_checkpoint(
                    checkpoint_dir, done, fingerprint, service.snapshot()
                )
            if config.differential_every and done % config.differential_every == 0:
                f0 = perf_counter()
                differentials.append(conformance_check(service))
                full_solve_s.append(perf_counter() - f0)
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    elapsed = perf_counter() - t0
    completed = stop_at == len(trace.events)
    if checkpoint_dir is not None and completed:
        write_checkpoint(
            checkpoint_dir, len(trace.events), fingerprint, service.snapshot()
        )
    final_diff = conformance_check(service) if completed else None
    if final_diff is not None:
        differentials.append(final_diff)
    mean_repair = sum(repair_s) / len(repair_s) if repair_s else 0.0
    mean_full = sum(full_solve_s) / len(full_solve_s) if full_solve_s else 0.0
    report = {
        "engine": "lid-service",
        "workload": config.workload,
        "family": config.family,
        "seed": config.seed,
        "n0": config.n,
        "quota": config.quota,
        "trace_events": len(trace.events),
        "trace_fingerprint": fingerprint,
        "applied_through": stop_at,
        "completed": completed,
        "final_n": service.n,
        "final_mode": service.mode,
        "matching_sha": _matching_sha(service),
        "sat_total": service.total_satisfaction() if service.n else 0.0,
        "blocking_edges": final_diff.blocking_edges if final_diff else 0,
        "matches_fresh_solve": (
            final_diff.matches_fresh_solve if final_diff else False
        ),
        "differential_checks": len(differentials),
        "differential_ok": all(d.ok for d in differentials),
        "oracle_violations": sum(len(d.oracle_violations) for d in differentials),
        "truncation_debt": service.truncated_since_sync,
        # machine-dependent tail (excluded from canonical comparisons)
        "elapsed_ms": elapsed * 1000.0,
        "mean_repair_ms": mean_repair * 1000.0,
        "mean_full_solve_ms": mean_full * 1000.0,
        "events_per_s": (stop_at - start_seq) / elapsed if elapsed > 0 else 0.0,
        "speedup_vs_full_x": (mean_full / mean_repair) if mean_repair > 0 else 0.0,
    }
    report.update(service.counters)
    return ServiceRunResult(
        report=report, service=service, differentials=differentials
    )


def kill_and_resume_check(
    config: ServiceConfig,
    workdir: "str | Path | None" = None,
    kill_frac: float = 0.6,
) -> dict:
    """Assert crash consistency: killed + resumed ≡ uninterrupted.

    Runs the trace three ways — uninterrupted, killed at
    ``kill_frac·events`` (losing everything past the last periodic
    checkpoint), and resumed — then compares the deterministic subset
    (:func:`repro.telemetry.sink.canonical_fields`) of the final
    reports byte for byte.
    """
    if not (0.0 < kill_frac < 1.0):
        raise ValueError(f"kill_frac must be in (0, 1), got {kill_frac}")

    def _check(td: Path) -> dict:
        base = run_service(config).report
        kill_after = max(1, int(config.events * kill_frac))
        run_service(config, checkpoint_dir=td, kill_after=kill_after)
        resumed_result = run_service(config, checkpoint_dir=td, resume=True)
        resumed = resumed_result.report
        # the differential sampler only sees the *replayed* suffix of a
        # resumed run, so its bookkeeping counts legitimately differ;
        # everything else deterministic must match byte for byte
        drop = ("differential_checks", "differential_ok", "oracle_violations")
        canon_base = canonical_fields(base, drop=drop)
        canon_resumed = canonical_fields(resumed, drop=drop)
        mismatches = sorted(
            k
            for k in set(canon_base) | set(canon_resumed)
            if canon_base.get(k) != canon_resumed.get(k)
        )
        return {
            "identical": json.dumps(canon_base, sort_keys=True)
            == json.dumps(canon_resumed, sort_keys=True),
            "kill_after": kill_after,
            "mismatches": mismatches,
            "guard_violations": resumed["guard_violations"],
            "differential_ok": bool(
                base["differential_ok"] and resumed["differential_ok"]
            ),
            "report": resumed,
        }

    if workdir is not None:
        return _check(Path(workdir))
    with tempfile.TemporaryDirectory(prefix="repro-service-") as td:
        return _check(Path(td))
