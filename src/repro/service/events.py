"""Deterministic churn workloads for the long-lived matching service.

A workload is a :class:`WorkloadTrace`: a pure function of ``(driver
name, event count, seed, parameters)``.  Every event carries *all* the
random material it needs (selector entropy ``r``, join coordinates,
quotas), drawn at generation time — resolving an event against the live
overlay (which peer leaves, which neighbours a joiner attaches to) is a
deterministic function of ``(event, current state)``.  That makes
replay trivially crash-consistent: a restored service needs only the
trace parameters and an event cursor, never an RNG state.

Drivers
-------
- :func:`poisson_trace` — memoryless arrivals, the steady-state mix;
- :func:`flash_crowd_trace` — a join surge, a plateau, a mass exodus;
- :func:`diurnal_trace` — sinusoidally modulated rate and join/leave
  balance (daytime growth, nighttime shrinkage);
- :func:`storm_trace` — adversarial alternating join/leave storms; the
  ungraceful-crash sub-schedule of every leave storm is built and
  validated through :class:`repro.distsim.failures.CrashSchedule`, the
  same machinery the fault campaign uses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable

from repro.utils.rng import spawn_rng

__all__ = [
    "ChurnEvent",
    "EVENT_KINDS",
    "WORKLOADS",
    "WorkloadTrace",
    "diurnal_trace",
    "flash_crowd_trace",
    "make_trace",
    "poisson_trace",
    "storm_trace",
]

EVENT_KINDS = ("join", "leave", "crash", "update")

#: selector entropy is bounded so event records stay portable JSON ints
_R_MAX = 2**53


@dataclass(frozen=True)
class ChurnEvent:
    """One churn arrival, self-contained and JSON-round-trippable.

    Attributes
    ----------
    seq:
        Position in the trace (the checkpoint cursor counts these).
    t:
        Virtual arrival time (drives nothing yet beyond reporting, but
        keeps traces comparable with the simulator's clock).
    kind:
        ``join`` / ``leave`` / ``crash`` / ``update``.  A crash is an
        ungraceful leave: same state change, separate accounting.
    r:
        Selector entropy.  Victim selection (`leave`/`crash`/`update`)
        indexes the sorted alive-id list with ``r``; joins derive their
        neighbour choice from a generator seeded with ``r``.
    degree:
        Number of neighbours a joiner attaches to (capped by the alive
        population at apply time).
    quota:
        The joiner's connection quota ``b_i``.
    position:
        Unit-square coordinates — the joiner's position, or the new
        position of an ``update`` victim (which re-ranks its region).
    """

    seq: int
    t: float
    kind: str
    r: int = 0
    degree: int = 0
    quota: int = 0
    position: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; known: {EVENT_KINDS}")
        if not (0 <= self.r < _R_MAX):
            raise ValueError(f"selector entropy {self.r} outside [0, 2**53)")

    def to_record(self) -> dict:
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "r": self.r,
            "degree": self.degree,
            "quota": self.quota,
            "position": list(self.position),
        }

    @staticmethod
    def from_record(record: dict) -> "ChurnEvent":
        return ChurnEvent(
            seq=int(record["seq"]),
            t=float(record["t"]),
            kind=str(record["kind"]),
            r=int(record["r"]),
            degree=int(record["degree"]),
            quota=int(record["quota"]),
            position=tuple(float(x) for x in record["position"]),
        )


@dataclass(frozen=True)
class WorkloadTrace:
    """A named, seeded, fully materialised event sequence."""

    name: str
    seed: int
    events: tuple[ChurnEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def fingerprint(self) -> str:
        """12-hex digest of the canonical trace content.

        Checkpoints pin this so a service can never resume one trace
        and silently replay a different one.
        """
        canon = json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "events": [e.to_record() for e in self.events],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]

    def kind_counts(self) -> dict[str, int]:
        out = {k: 0 for k in EVENT_KINDS}
        for e in self.events:
            out[e.kind] += 1
        return out


def _draw_r(rng) -> int:
    return int(rng.integers(0, _R_MAX))


def _join(seq: int, t: float, rng, quota: int, degree: int) -> ChurnEvent:
    return ChurnEvent(
        seq=seq,
        t=t,
        kind="join",
        r=_draw_r(rng),
        degree=int(rng.integers(max(1, degree - 1), degree + 2)),
        quota=quota,
        position=(float(rng.uniform(0, 1)), float(rng.uniform(0, 1))),
    )


def _victim(seq: int, t: float, rng, kind: str) -> ChurnEvent:
    return ChurnEvent(seq=seq, t=t, kind=kind, r=_draw_r(rng))


def _update(seq: int, t: float, rng) -> ChurnEvent:
    return ChurnEvent(
        seq=seq,
        t=t,
        kind="update",
        r=_draw_r(rng),
        position=(float(rng.uniform(0, 1)), float(rng.uniform(0, 1))),
    )


def _mixed_event(seq, t, rng, mix, quota, degree) -> ChurnEvent:
    kinds, probs = zip(*mix)
    kind = kinds[int(rng.choice(len(kinds), p=list(probs)))]
    if kind == "join":
        return _join(seq, t, rng, quota, degree)
    if kind == "update":
        return _update(seq, t, rng)
    return _victim(seq, t, rng, kind)


def poisson_trace(
    events: int,
    seed: int,
    rate: float = 10.0,
    quota: int = 3,
    degree: int = 4,
    join_frac: float = 0.42,
    leave_frac: float = 0.33,
    crash_frac: float = 0.05,
) -> WorkloadTrace:
    """Memoryless churn: exponential inter-arrivals, fixed event mix.

    The slight join surplus keeps the population from draining over
    long traces; the remainder after joins/leaves/crashes are
    preference updates.
    """
    if events < 0:
        raise ValueError(f"events must be >= 0, got {events}")
    update_frac = 1.0 - join_frac - leave_frac - crash_frac
    if update_frac < 0:
        raise ValueError("join/leave/crash fractions exceed 1")
    rng = spawn_rng(seed, "service-poisson")
    mix = [("join", join_frac), ("leave", leave_frac),
           ("crash", crash_frac), ("update", update_frac)]
    t = 0.0
    out = []
    for seq in range(events):
        t += float(rng.exponential(1.0 / rate))
        out.append(_mixed_event(seq, t, rng, mix, quota, degree))
    return WorkloadTrace("poisson", seed, tuple(out))


def flash_crowd_trace(
    events: int,
    seed: int,
    rate: float = 10.0,
    quota: int = 3,
    degree: int = 4,
    surge_frac: float = 0.4,
    plateau_frac: float = 0.3,
) -> WorkloadTrace:
    """A flash crowd: join surge → mixed plateau → mass exodus.

    The surge arrives an order of magnitude faster than the plateau;
    the exodus mixes graceful leaves with ungraceful crashes (a crowd
    closing laptops, not saying goodbye).
    """
    if events < 0:
        raise ValueError(f"events must be >= 0, got {events}")
    rng = spawn_rng(seed, "service-flash")
    surge = int(events * surge_frac)
    plateau = int(events * plateau_frac)
    plateau_mix = [("join", 0.3), ("leave", 0.3), ("crash", 0.05),
                   ("update", 0.35)]
    exodus_mix = [("join", 0.05), ("leave", 0.6), ("crash", 0.3),
                  ("update", 0.05)]
    t = 0.0
    out = []
    for seq in range(events):
        if seq < surge:
            t += float(rng.exponential(1.0 / (10.0 * rate)))
            out.append(_join(seq, t, rng, quota, degree))
        elif seq < surge + plateau:
            t += float(rng.exponential(1.0 / rate))
            out.append(_mixed_event(seq, t, rng, plateau_mix, quota, degree))
        else:
            t += float(rng.exponential(1.0 / (4.0 * rate)))
            out.append(_mixed_event(seq, t, rng, exodus_mix, quota, degree))
    return WorkloadTrace("flash", seed, tuple(out))


def diurnal_trace(
    events: int,
    seed: int,
    rate: float = 10.0,
    quota: int = 3,
    degree: int = 4,
    period: float = 24.0,
    amplitude: float = 0.8,
) -> WorkloadTrace:
    """Diurnal load: rate and join/leave balance follow a day cycle.

    Daytime (phase ∈ [0, ½)) churns fast and join-heavy; nighttime slow
    and leave-heavy — the classic measured P2P session pattern.
    """
    import math

    if events < 0:
        raise ValueError(f"events must be >= 0, got {events}")
    if not (0.0 <= amplitude < 1.0):
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    rng = spawn_rng(seed, "service-diurnal")
    t = 0.0
    out = []
    for seq in range(events):
        phase = math.sin(2.0 * math.pi * t / period)
        t += float(rng.exponential(1.0 / (rate * (1.0 + amplitude * phase))))
        join_p = 0.40 + 0.25 * phase  # day: joins dominate; night: leaves
        leave_p = 0.40 - 0.25 * phase
        mix = [("join", join_p), ("leave", leave_p), ("crash", 0.05),
               ("update", 1.0 - join_p - leave_p - 0.05)]
        out.append(_mixed_event(seq, t, rng, mix, quota, degree))
    return WorkloadTrace("diurnal", seed, tuple(out))


def storm_trace(
    events: int,
    seed: int,
    rate: float = 10.0,
    quota: int = 3,
    degree: int = 4,
    storm_len: int = 16,
    crash_frac: float = 0.5,
) -> WorkloadTrace:
    """Adversarial alternating join/leave storms.

    Bursts of ``storm_len`` back-to-back joins alternate with equally
    long departure storms in which a ``crash_frac`` fraction of exits
    are ungraceful.  The crash sub-schedule of each departure storm is
    round-tripped through :class:`repro.distsim.failures.CrashSchedule`
    so storm traces share the fault campaign's validated timing model
    (positive finite times, canonical ordering).
    """
    from repro.distsim.failures import CrashSchedule

    if events < 0:
        raise ValueError(f"events must be >= 0, got {events}")
    if storm_len < 1:
        raise ValueError(f"storm_len must be >= 1, got {storm_len}")
    rng = spawn_rng(seed, "service-storm")
    t = 0.0
    out: list[ChurnEvent] = []
    seq = 0
    joining = True
    while seq < events:
        burst = min(storm_len, events - seq)
        times = []
        for _ in range(burst):
            t += float(rng.exponential(1.0 / (20.0 * rate)))
            times.append(t)
        if joining:
            for bt in times:
                out.append(_join(seq, bt, rng, quota, degree))
                seq += 1
        else:
            crashes = [(bt, k) for k, bt in enumerate(times)
                       if rng.random() < crash_frac]
            # validate the ungraceful sub-schedule exactly as the fault
            # campaign would: CrashSchedule canonicalises and rejects
            # malformed (time, slot) pairs
            crash_slots = {k for _, k in CrashSchedule(crashes).crashes}
            for k, bt in enumerate(times):
                kind = "crash" if k in crash_slots else "leave"
                out.append(_victim(seq, bt, rng, kind))
                seq += 1
        t += float(rng.exponential(4.0 / rate))  # lull between storms
        joining = not joining
    return WorkloadTrace("storm", seed, tuple(out))


WORKLOADS: dict[str, Callable[..., WorkloadTrace]] = {
    "poisson": poisson_trace,
    "flash": flash_crowd_trace,
    "diurnal": diurnal_trace,
    "storm": storm_trace,
}


def make_trace(workload: str, events: int, seed: int, **params) -> WorkloadTrace:
    """Build the named workload's trace (deterministic in all inputs)."""
    try:
        driver = WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return driver(events, seed, **params)
