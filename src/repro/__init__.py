"""repro — reproduction of *Overlays with preferences* (IPDPS 2010).

A production-quality implementation of Georgiadis & Papatriantafilou's
approximation algorithms for many-to-many matching with preference
lists, together with every substrate the paper depends on:

- ``repro.core``       — satisfaction metric, eq.-9 weights, LIC & LID,
- ``repro.distsim``    — deterministic message-passing simulator,
- ``repro.baselines``  — exact solvers, greedy/random/stable baselines,
- ``repro.overlay``    — peers, suitability metrics, topologies, churn,
- ``repro.experiments``— the harness regenerating the paper's claims.

Quickstart::

    from repro import PreferenceSystem, solve_lid

    ps = PreferenceSystem(
        rankings={0: [1, 2], 1: [0, 2], 2: [1, 0]},
        quotas=1,
    )
    result, wt = solve_lid(ps)
    print(result.matching.edges(), result.matching.total_satisfaction(ps))
"""

from repro.serialization import from_dict, load_json, save_json, to_dict
from repro.core import (
    LidResult,
    Matching,
    PreferenceSystem,
    WeightTable,
    full_satisfaction,
    lic_matching,
    run_lid,
    satisfaction_weights,
    solve_lid,
    solve_modified_bmatching,
    static_satisfaction,
    total_satisfaction,
)

__version__ = "1.0.0"

__all__ = [
    "PreferenceSystem",
    "Matching",
    "WeightTable",
    "satisfaction_weights",
    "lic_matching",
    "run_lid",
    "solve_lid",
    "solve_modified_bmatching",
    "LidResult",
    "full_satisfaction",
    "static_satisfaction",
    "total_satisfaction",
    "from_dict",
    "load_json",
    "save_json",
    "to_dict",
    "__version__",
]
