"""Deterministic JSONL sink with a versioned schema.

One telemetry session (one grid cell, one benchmark run, one campaign
cell) serialises to a list of flat JSON records, one per line:

- ``{"schema": 1, "kind": "run", ...}`` — exactly one per file, first
  line: identifying coordinates plus deterministic end-state metrics;
- ``{"kind": "probe", "t": ..., ...}`` — the convergence trajectory in
  tick order (see :mod:`repro.telemetry.probes`), fully deterministic;
- ``{"kind": "span", "seq": ..., "path": ..., "start_ms": ...,
  "duration_ms": ...}`` — completed spans in completion order;
- ``{"kind": "resource", "peak_rss_kb": ..., ...}`` — at most one, the
  :class:`~repro.telemetry.resources.ResourceSampler` profile.

**Determinism contract.**  Field *names* declare reproducibility:
any field whose name ends in ``_ms`` (wall-clock), ``_kb`` (memory) or
``_per_s`` (throughput) is machine-dependent; everything else must be
a pure function of the run's inputs.  Canonical outputs (the telemetry
report's markdown/CSV, mirroring how ``experiments/aggregate.py``
excludes ``*_ms`` columns) are built only from deterministic fields,
which is what makes kill-and-resume byte-identical.  Lines are written
with sorted keys and compact separators so the files themselves diff
cleanly.

Bump :data:`SCHEMA_VERSION` on any incompatible record change and keep
``read_jsonl`` accepting old versions where practical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.telemetry.probes import ProbeSample
from repro.telemetry.spans import SpanRecord

__all__ = [
    "SCHEMA_VERSION",
    "NONDETERMINISTIC_SUFFIXES",
    "canonical_fields",
    "is_deterministic_field",
    "read_jsonl",
    "session_records",
    "write_jsonl",
]

SCHEMA_VERSION = 1

#: Reserved field-name suffixes marking machine-dependent values
#: (durations, footprints, rates, and timing *ratios* such as
#: ``speedup_vs_full_x``).
NONDETERMINISTIC_SUFFIXES = ("_ms", "_kb", "_per_s", "_x")

#: Record kinds that are deterministic end to end (every field).
DETERMINISTIC_KINDS = frozenset({"run", "probe"})


def is_deterministic_field(name: str) -> bool:
    """True when ``name`` promises a machine-independent value."""
    return not name.endswith(NONDETERMINISTIC_SUFFIXES)


def canonical_fields(record: dict, *, drop: Sequence[str] = ()) -> dict:
    """The deterministic subset of ``record``, in sorted key order."""
    return {
        k: record[k]
        for k in sorted(record)
        if k not in drop and is_deterministic_field(k)
    }


def session_records(
    run: dict,
    *,
    spans: Union[Iterable[SpanRecord], None] = None,
    probes: Union[Iterable[ProbeSample], None] = None,
    resources: Optional[dict] = None,
) -> list[dict]:
    """Assemble one session's records in the canonical order.

    Order is fixed (run, probes by tick, spans by completion, resource
    last) so a file's deterministic prefix is stable regardless of how
    the caller interleaved measurement.  ``run`` must contain only
    deterministic fields unless suffixed appropriately; that is the
    caller's promise, not something the sink can check for them.
    """
    records: list[dict] = [{"schema": SCHEMA_VERSION, "kind": "run", **run}]
    for sample in probes or ():
        records.append({"kind": "probe", **sample.to_record()})
    for span in spans or ():
        records.append(
            {
                "kind": "span",
                "seq": span.seq,
                "name": span.name,
                "path": span.path,
                "depth": span.depth,
                "start_ms": span.start_s * 1e3,
                "duration_ms": span.duration_s * 1e3,
            }
        )
    if resources:
        records.append({"kind": "resource", **resources})
    return records


def _dumps(record: dict) -> str:
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def write_jsonl(path: Union[str, Path], records: Iterable[dict]) -> Path:
    """Write records one-per-line (sorted keys, compact, ``\\n`` EOL).

    The write is atomic (temp file + rename) so a killed run never
    leaves a torn file for resume logic to trip over.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8", newline="\n") as fh:
        for record in records:
            fh.write(_dumps(record))
            fh.write("\n")
    tmp.replace(path)
    return path


def read_jsonl(path: Union[str, Path]) -> list[dict]:
    """Read a telemetry JSONL file, skipping blank lines."""
    out: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
