"""``python -m repro telemetry report`` — render a store's telemetry.

A grid store holds one ``telemetry/<cell_id>.jsonl`` per executed cell
(when the run was telemetry-enabled).  This module joins those files
into two canonical outputs inside the store:

- ``telemetry_report.md`` — one row per cell: the run record's
  deterministic fields plus the convergence summary (final quota fill,
  outstanding-proposal peak, t50/t90/t99 lock-convergence ticks);
- ``telemetry_summary.csv`` — the same rows as CSV.

Both are built exclusively from deterministic fields (see the suffix
contract in :mod:`repro.telemetry.sink`), so they are byte-identical
across a kill-and-resume run — the same guarantee
``experiments/aggregate.py`` gives ``report.md``/``summary.csv``.
``--full`` appends a per-cell appendix of span timings and resource
profiles; that appendix is machine-dependent by nature and explicitly
outside the byte-reproducibility contract.

This module deliberately imports nothing from ``repro.experiments``
(the grid imports telemetry, not the other way round); it only needs
the store *directory*, not the :class:`GridStore` object.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.telemetry.probes import ProbeSample, convergence_summary
from repro.telemetry.sink import SCHEMA_VERSION, canonical_fields

__all__ = [
    "cell_summary",
    "load_store_telemetry",
    "render_telemetry_report",
    "telemetry_summary_rows",
    "write_telemetry_report",
]

#: fields of the run/probe records that identify rather than measure
_META_FIELDS = ("schema", "kind")


def load_store_telemetry(
    store_dir: Union[str, Path],
) -> dict[str, list[dict]]:
    """All per-cell record lists of a store, keyed and ordered by cell id."""
    tdir = Path(store_dir) / "telemetry"
    if not tdir.is_dir():
        return {}
    from repro.telemetry.sink import read_jsonl

    return {p.stem: read_jsonl(p) for p in sorted(tdir.glob("*.jsonl"))}


def cell_summary(cell_id: str, records: Sequence[Mapping]) -> dict:
    """One deterministic report row for one cell's telemetry records."""
    run = next((r for r in records if r.get("kind") == "run"), {})
    probes = [
        ProbeSample.from_record(r) for r in records if r.get("kind") == "probe"
    ]
    row: dict = {"cell": cell_id}
    row.update(canonical_fields(dict(run), drop=_META_FIELDS))
    if probes:
        for key, value in convergence_summary(probes).items():
            row.setdefault(key, value)
    return row


def telemetry_summary_rows(cells: Mapping[str, Sequence[Mapping]]) -> list[dict]:
    """Report rows for every cell, in sorted cell-id order."""
    return [cell_summary(cid, cells[cid]) for cid in sorted(cells)]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    if value is None:
        return "-"
    return str(value)


def _columns(rows: Sequence[Mapping]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for c in row:
            if c not in columns:
                columns.append(c)
    return columns


def _md_table(rows: Sequence[Mapping]) -> str:
    if not rows:
        return "(no rows)\n"
    columns = _columns(rows)
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |"
        )
    return "\n".join(lines) + "\n"


def _full_appendix(cells: Mapping[str, Sequence[Mapping]]) -> list[str]:
    lines = [
        "## Appendix: spans and resource profiles (machine-dependent)",
        "",
        "_This section reports wall-clock and memory figures; it is not",
        "covered by the byte-reproducibility contract._",
        "",
    ]
    for cid in sorted(cells):
        spans = [r for r in cells[cid] if r.get("kind") == "span"]
        resources = [r for r in cells[cid] if r.get("kind") == "resource"]
        if not spans and not resources:
            continue
        lines += [f"### {cid}", ""]
        if spans:
            lines.append(
                _md_table(
                    [
                        {
                            "path": s.get("path"),
                            "depth": s.get("depth"),
                            "start_ms": s.get("start_ms"),
                            "duration_ms": s.get("duration_ms"),
                        }
                        for s in sorted(spans, key=lambda s: s.get("seq", 0))
                    ]
                )
            )
        for res in resources:
            lines.append(
                _md_table([{k: res[k] for k in sorted(res) if k != "kind"}])
            )
    return lines


def render_telemetry_report(
    cells: Mapping[str, Sequence[Mapping]],
    *,
    title: str = "",
    full: bool = False,
) -> str:
    """The telemetry markdown report (deterministic bytes unless ``full``)."""
    rows = telemetry_summary_rows(cells)
    lines = [
        f"# Telemetry report{' — ' + title if title else ''}",
        "",
        f"- schema: {SCHEMA_VERSION}",
        f"- cells with telemetry: {len(rows)}",
        "",
        "## Convergence and end-state (deterministic fields only)",
        "",
        _md_table(rows),
    ]
    if full:
        lines += _full_appendix(cells)
    return "\n".join(lines)


def _write_csv(rows: Sequence[Mapping], path: Path) -> None:
    with path.open("w", newline="") as fh:
        if not rows:
            return
        writer = csv.DictWriter(fh, fieldnames=_columns(rows))
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _fmt(v) for k, v in row.items()})


def write_telemetry_report(
    store_dir: Union[str, Path],
    *,
    out_dir: Union[str, Path, None] = None,
    title: Optional[str] = None,
    full: bool = False,
) -> dict[str, Path]:
    """Write ``telemetry_report.md`` / ``telemetry_summary.csv``.

    Outputs land inside the store (next to ``report.md``); with
    ``out_dir`` the same files are additionally copied there under
    ``telemetry_<title>_…`` names for archiving.
    """
    store_dir = Path(store_dir)
    cells = load_store_telemetry(store_dir)
    report = render_telemetry_report(
        cells, title=title or store_dir.name, full=full
    )
    rows = telemetry_summary_rows(cells)

    paths = {
        "report": store_dir / "telemetry_report.md",
        "summary": store_dir / "telemetry_summary.csv",
    }
    paths["report"].write_text(report)
    _write_csv(rows, paths["summary"])

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        stem = title or store_dir.name
        paths["out_report"] = out / f"telemetry_{stem}_report.md"
        paths["out_summary"] = out / f"telemetry_{stem}_summary.csv"
        paths["out_report"].write_text(report)
        _write_csv(rows, paths["out_summary"])
    return paths
