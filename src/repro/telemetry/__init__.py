"""Unified telemetry: spans, convergence probes, resource profiles.

The paper's claims are about *trajectories* — how fast LID converges
toward the Theorem 1/3 bounds and at what message cost — so the repo
needs more than end-state counters.  This package is the measurement
substrate shared by every engine and every experiment front end:

- :mod:`repro.telemetry.spans` — a zero-overhead-when-disabled
  span/timer API (``with tel.span("build_weights"):``) with nesting,
  replacing the ad-hoc ``phase_seconds`` wall-clock dicts that used to
  be assembled by hand in each engine;
- :mod:`repro.telemetry.probes` — a convergence probe sampling
  matched-fraction / quota-fill / outstanding-proposal trajectories at
  virtual-time ticks, with one shared sampling convention across the
  event, fast and resilient engines (samples are *deterministic* and
  engine-comparable);
- :mod:`repro.telemetry.resources` — peak RSS, GC pauses and
  events/edges-per-second throughput for the scale work (ROADMAP
  item 2);
- :mod:`repro.telemetry.sink` — a versioned, deterministic JSONL
  record format.  Nondeterministic fields carry reserved suffixes
  (``_ms``, ``_kb``, ``_per_s``) and are segregated exactly the way
  :mod:`repro.experiments.aggregate` excludes ``*_ms`` columns, so
  canonical reports stay byte-reproducible across resumed runs;
- :mod:`repro.telemetry.report` — ``python -m repro telemetry report``:
  markdown/CSV rendering over the per-cell ``telemetry/*.jsonl`` files
  of a grid store.

See ``docs/observability.md`` for the schema and the determinism
contract.
"""

from repro.telemetry.probes import (
    ConvergenceProbe,
    ProbeSample,
    convergence_summary,
    sample_nodes,
)
from repro.telemetry.report import render_telemetry_report, write_telemetry_report
from repro.telemetry.resources import ResourceSampler, peak_rss_kb
from repro.telemetry.sink import (
    SCHEMA_VERSION,
    canonical_fields,
    is_deterministic_field,
    read_jsonl,
    session_records,
    write_jsonl,
)
from repro.telemetry.spans import NULL, NullTelemetry, SpanRecord, Telemetry

__all__ = [
    "NULL",
    "NullTelemetry",
    "SpanRecord",
    "Telemetry",
    "ConvergenceProbe",
    "ProbeSample",
    "convergence_summary",
    "sample_nodes",
    "ResourceSampler",
    "peak_rss_kb",
    "SCHEMA_VERSION",
    "canonical_fields",
    "is_deterministic_field",
    "read_jsonl",
    "session_records",
    "write_jsonl",
    "render_telemetry_report",
    "write_telemetry_report",
]
