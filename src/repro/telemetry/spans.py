"""Span/timer API: nested wall-clock attribution, free when disabled.

A *span* is a named wall-clock interval (``build_weights``,
``sim_loop``, ``extract`` …).  Spans nest: entering a span while
another is open records the child under the parent's slash-joined
path, so one run yields a small tree of phase timings instead of the
flat hand-rolled ``phase_seconds`` dicts the engines used to fill.

Two implementations share the interface:

- :class:`Telemetry` — the recording implementation.  ``span(name)``
  returns a context manager; on exit a :class:`SpanRecord` is appended
  in completion order (deterministic for a single-threaded run).
- :class:`NullTelemetry` — the disabled implementation.  Its
  :meth:`~NullTelemetry.span` returns one process-wide no-op context
  manager, so the disabled hot path costs a method call and **zero
  allocations** (asserted by ``tests/telemetry/test_spans.py``).
  Engine entry points accept ``telemetry=None`` and substitute
  :data:`NULL`.

Wall-clock durations are inherently nondeterministic, so every
numeric field of an exported span record carries the ``_ms`` suffix
and is excluded from canonical telemetry reports (see
:mod:`repro.telemetry.sink`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

__all__ = ["NULL", "NullTelemetry", "SpanRecord", "Telemetry"]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span.

    ``path`` is the slash-joined ancestry (``"cell/sim_loop"``);
    ``depth`` its nesting level (0 = top-level); ``start_s`` /
    ``duration_s`` are seconds relative to the owning
    :class:`Telemetry`'s epoch.  ``seq`` is the completion index —
    the deterministic ordering key for export.
    """

    seq: int
    name: str
    path: str
    depth: int
    start_s: float
    duration_s: float


class _NullSpan:
    """The process-wide no-op span (never allocated per call)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    There is one shared instance, :data:`NULL`; ``span`` hands back the
    same :class:`_NullSpan` singleton every time, so a run with
    telemetry off allocates nothing on the span path.
    """

    __slots__ = ()
    enabled = False
    open_spans = 0

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, duration_s: float) -> None:
        return None

    def records(self) -> list[SpanRecord]:
        return []

    def mark(self) -> int:
        return 0

    def phase_seconds(
        self, depth: Optional[int] = 0, since: int = 0
    ) -> dict[str, float]:
        return {}


NULL = NullTelemetry()


class _Span:
    """Context manager recording one interval into its telemetry."""

    __slots__ = ("_tel", "_name", "_path", "_depth", "_t0")

    def __init__(self, tel: "Telemetry", name: str):
        self._tel = tel
        self._name = name
        self._path = ""
        self._depth = 0
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        tel = self._tel
        stack = tel._stack
        self._depth = len(stack)
        self._path = (
            f"{stack[-1]._path}/{self._name}" if stack else self._name
        )
        stack.append(self)
        self._t0 = tel._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tel = self._tel
        t1 = tel._clock()
        top = tel._stack.pop()
        if top is not self:  # pragma: no cover - defensive
            raise RuntimeError(
                f"span {self._path!r} closed while {top._path!r} was open"
            )
        tel._records.append(
            SpanRecord(
                seq=len(tel._records),
                name=self._name,
                path=self._path,
                depth=self._depth,
                start_s=self._t0 - tel._epoch,
                duration_s=t1 - self._t0,
            )
        )
        return False


class Telemetry:
    """Recording telemetry: hands out nesting spans.

    Parameters
    ----------
    clock:
        Time source (seconds, monotonic); injectable for tests.  The
        first reading taken at construction is the *epoch* all span
        start offsets are relative to.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._records: list[SpanRecord] = []
        self._stack: list[_Span] = []

    def span(self, name: str) -> _Span:
        """A context manager timing ``name`` (nested under any open span)."""
        return _Span(self, name)

    def add_span(self, name: str, duration_s: float) -> None:
        """Record an externally measured interval as a completed span.

        The span is filed as a child of the currently open span (path,
        depth), ending *now*: ``start_s`` is back-computed as
        ``now - duration_s``.  This is how concurrent engines attribute
        time measured elsewhere — e.g. the sharded LID engine records
        each worker's accumulated wave time as a ``shard<i>`` child of
        its ``sim_loop`` span, intervals that overlap in wall-clock and
        therefore cannot be expressed with nested :meth:`span` context
        managers.
        """
        t1 = self._clock()
        stack = self._stack
        path = f"{stack[-1]._path}/{name}" if stack else name
        self._records.append(
            SpanRecord(
                seq=len(self._records),
                name=name,
                path=path,
                depth=len(stack),
                start_s=max(0.0, t1 - self._epoch - duration_s),
                duration_s=duration_s,
            )
        )

    def records(self) -> list[SpanRecord]:
        """Completed spans in completion order."""
        return list(self._records)

    @property
    def open_spans(self) -> int:
        """Number of currently open (unfinished) spans."""
        return len(self._stack)

    def mark(self) -> int:
        """Bookmark the current record count for a later ``since=`` query."""
        return len(self._records)

    def phase_seconds(
        self, depth: Optional[int] = 0, since: int = 0
    ) -> dict[str, float]:
        """Total seconds per span *name*, summed over completions.

        ``since`` restricts the query to records completed after a
        :meth:`mark` bookmark — how an engine computes *its own* phase
        dict when the caller's telemetry already holds earlier spans.
        With the default ``depth=0`` only the outermost spans of the
        considered window contribute (depth is relative to the
        shallowest considered record, so an engine's phases still count
        as top-level when nested under a caller's ``cell`` span) — the
        drop-in replacement for the engines' legacy
        ``SimMetrics.phase_seconds`` dicts (children are attribution
        detail, not additional wall time).  ``depth=None`` sums every
        completion of the name regardless of nesting.
        """
        records = self._records[since:] if since else self._records
        out: dict[str, float] = {}
        if not records:
            return out
        base = min(rec.depth for rec in records) if depth is not None else 0
        for rec in records:
            if depth is not None and rec.depth - base != depth:
                continue
            out[rec.name] = out.get(rec.name, 0.0) + rec.duration_s
        return out
