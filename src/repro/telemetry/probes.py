"""Convergence probes: protocol-state trajectories at virtual-time ticks.

End-state metrics say *what* LID converged to; a probe says *how fast*.
A :class:`ConvergenceProbe` collects :class:`ProbeSample` snapshots of
aggregate protocol state — locked edge endpoints, matched/finished
nodes, outstanding proposals, cumulative PROP/REJ counts, quota fill —
at configurable virtual-time ticks.

Sampling convention (shared by every engine, so trajectories are
directly comparable and **bit-identical** between the event simulator
and the round-batched fast engine):

    the sample at tick ``t`` reflects the state after every event with
    virtual time ``< t`` has been processed and before any event at
    time ``>= t`` runs, plus one final sample after quiescence.

For the default unit-latency channels this means tick ``t = r``
captures the state between synchronous round ``r - 1`` and round
``r`` — exactly the state the fast engine holds at the top of its wave
loop.  The event simulator implements the same convention without
queueing any probe events (see ``Simulator.run``), so enabling a probe
never perturbs event counts, message ordering or any other observable.

Samples are pure functions of protocol state: no wall-clock, no memory
readings.  They are therefore *deterministic* and belong to the
canonical (byte-reproducible) part of telemetry reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

__all__ = [
    "ConvergenceProbe",
    "ProbeSample",
    "convergence_summary",
    "sample_nodes",
]


@dataclass(frozen=True, slots=True)
class ProbeSample:
    """Aggregate protocol state at one virtual-time tick.

    ``locks`` counts *directed* lock endpoints (``sum_i |K_i|`` — twice
    the matched-edge count when the lock relation is symmetric, which
    fault injection can temporarily break), ``matched_nodes`` the nodes
    holding at least one lock, ``outstanding_props`` the proposals
    awaiting an answer (``sum_i |P_i \\ K_i|``), and ``quota_fill`` the
    filled fraction of the total quota (``locks / sum_i b_i``).
    ``props_sent`` / ``rejs_sent`` are cumulative send counts.
    """

    t: float
    locks: int
    matched_nodes: int
    finished_nodes: int
    outstanding_props: int
    props_sent: int
    rejs_sent: int
    quota_fill: float

    def to_record(self) -> dict:
        """Flat JSONL payload (all fields deterministic)."""
        return {
            "t": self.t,
            "locks": self.locks,
            "matched_nodes": self.matched_nodes,
            "finished_nodes": self.finished_nodes,
            "outstanding_props": self.outstanding_props,
            "props_sent": self.props_sent,
            "rejs_sent": self.rejs_sent,
            "quota_fill": self.quota_fill,
        }

    @staticmethod
    def from_record(record: dict) -> "ProbeSample":
        return ProbeSample(
            t=float(record["t"]),
            locks=int(record["locks"]),
            matched_nodes=int(record["matched_nodes"]),
            finished_nodes=int(record["finished_nodes"]),
            outstanding_props=int(record["outstanding_props"]),
            props_sent=int(record["props_sent"]),
            rejs_sent=int(record["rejs_sent"]),
            quota_fill=float(record["quota_fill"]),
        )


def sample_nodes(t: float, nodes: Sequence) -> ProbeSample:
    """Snapshot a list of LID-style nodes (event or resilient engine).

    Duck-typed over the protocol attributes shared by
    :class:`~repro.core.lid.LidNode` and
    :class:`~repro.core.resilient_lid.ResilientLidNode`: ``locked`` /
    ``proposed`` sets, ``quota``, ``finished``, ``props_sent`` /
    ``rejs_sent`` counters.
    """
    locks = matched = finished = outstanding = props = rejs = quota = 0
    for node in nodes:
        k = len(node.locked)
        locks += k
        if k:
            matched += 1
        if node.finished:
            finished += 1
        outstanding += len(node.proposed - node.locked)
        props += node.props_sent
        rejs += node.rejs_sent
        quota += node.quota
    return ProbeSample(
        t=float(t),
        locks=locks,
        matched_nodes=matched,
        finished_nodes=finished,
        outstanding_props=outstanding,
        props_sent=props,
        rejs_sent=rejs,
        quota_fill=(locks / quota) if quota else 0.0,
    )


class ConvergenceProbe:
    """Collects :class:`ProbeSample` trajectories at fixed tick spacing.

    Parameters
    ----------
    interval:
        Virtual-time spacing between ticks (default ``1.0`` — one
        sample per synchronous round under unit latency).  The fast
        engine, which has no continuous clock, samples every
        ``ceil(interval)`` rounds.
    """

    def __init__(self, interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval}")
        self.interval = float(interval)
        self.samples: list[ProbeSample] = []

    def record(self, sample: ProbeSample) -> None:
        self.samples.append(sample)

    def observe(self, t: float, nodes: Sequence) -> None:
        """Sample node-object state at tick ``t`` (simulator engines)."""
        self.record(sample_nodes(t, nodes))

    def __len__(self) -> int:
        return len(self.samples)

    def final(self) -> Optional[ProbeSample]:
        return self.samples[-1] if self.samples else None

    def time_to_fraction(self, fraction: float, field: str = "locks") -> float:
        """First tick at which ``field`` reached ``fraction`` of its
        final value (``inf`` when never, ``0.0`` when the final value
        is zero)."""
        if not self.samples:
            return float("inf")
        target = fraction * getattr(self.samples[-1], field)
        if target <= 0:
            return 0.0
        for s in self.samples:
            if getattr(s, field) >= target:
                return s.t
        return float("inf")

    def summary(self) -> dict:
        return convergence_summary(self.samples)


def convergence_summary(samples: Iterable[ProbeSample]) -> dict:
    """Deterministic scalar summary of a probe trajectory.

    The fields every report row carries: final state, the peak number
    of simultaneously outstanding proposals, and the ticks at which the
    lock count first reached 50 / 90 / 99 % of its final value
    (``t50`` / ``t90`` / ``t99`` — the satisfaction-vs-round knee
    ROADMAP item 3 studies).
    """
    samples = list(samples)
    if not samples:
        return {"ticks": 0}
    probe = ConvergenceProbe()
    probe.samples = samples
    last = samples[-1]
    return {
        "ticks": len(samples),
        "t_final": last.t,
        "locks": last.locks,
        "matched_nodes": last.matched_nodes,
        "finished_nodes": last.finished_nodes,
        "outstanding_final": last.outstanding_props,
        "outstanding_peak": max(s.outstanding_props for s in samples),
        "quota_fill": last.quota_fill,
        "t50": probe.time_to_fraction(0.50),
        "t90": probe.time_to_fraction(0.90),
        "t99": probe.time_to_fraction(0.99),
    }
