"""Resource profiles: peak RSS, GC pauses, events/edges per second.

The million-node path (ROADMAP item 2) asks for a peak-RSS /
edges-per-second trajectory; this module is where those numbers come
from.  A :class:`ResourceSampler` brackets a run::

    with ResourceSampler() as rs:
        res = lid_matching_fast(...)
    profile = rs.profile(events=res.metrics.events, edges=m)

and yields a flat profile dict.  Every field is machine-load dependent
and therefore carries one of the reserved nondeterministic suffixes
(``_ms``, ``_kb``, ``_per_s`` — see :mod:`repro.telemetry.sink`), so
resource records never enter canonical byte-reproducible reports.

``resource.getrusage`` is POSIX-only; on platforms without it the RSS
fields degrade to ``0.0`` instead of failing (the container bakes in
CPython on Linux, where ``ru_maxrss`` is reported in KiB).
"""

from __future__ import annotations

import gc
from time import perf_counter
from typing import Optional

try:  # pragma: no cover - import gate exercised only off-POSIX
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = ["ResourceSampler", "peak_rss_kb"]


def peak_rss_kb() -> float:
    """Process-lifetime peak resident set size in KiB (0.0 if unavailable).

    Note ``ru_maxrss`` is a high-water mark: it never decreases, so the
    *delta* across a run (``rss_growth_kb`` in the profile) is the
    honest per-run figure on a warm process.
    """
    if _resource is None:
        return 0.0
    return float(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class ResourceSampler:
    """Brackets a run and reports its resource profile.

    Usable as a context manager or via explicit :meth:`start` /
    :meth:`stop`.  GC pauses are measured by registering a
    ``gc.callbacks`` hook for the duration of the bracket; the hook is
    always removed on exit, so nesting samplers or crashing inside the
    bracket cannot leak callbacks.
    """

    def __init__(self) -> None:
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None
        self._rss0 = 0.0
        self._rss1 = 0.0
        self._gc_t0 = 0.0
        self._gc_pauses: list[float] = []
        self._hooked = False

    # -- bracket ---------------------------------------------------------

    def start(self) -> "ResourceSampler":
        if self._t0 is not None and self._t1 is None:
            raise RuntimeError("ResourceSampler already started")
        self._t1 = None
        self._gc_pauses = []
        self._rss0 = peak_rss_kb()
        if not self._hooked:
            gc.callbacks.append(self._gc_callback)
            self._hooked = True
        self._t0 = perf_counter()
        return self

    def stop(self) -> "ResourceSampler":
        if self._t0 is None:
            raise RuntimeError("ResourceSampler never started")
        self._t1 = perf_counter()
        if self._hooked:
            try:
                gc.callbacks.remove(self._gc_callback)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._hooked = False
        self._rss1 = peak_rss_kb()
        return self

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def _gc_callback(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_t0 = perf_counter()
        elif phase == "stop":
            self._gc_pauses.append(perf_counter() - self._gc_t0)

    # -- results ---------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        if self._t0 is None:
            return 0.0
        end = self._t1 if self._t1 is not None else perf_counter()
        return end - self._t0

    def profile(
        self,
        *,
        events: Optional[int] = None,
        edges: Optional[int] = None,
    ) -> dict[str, float]:
        """Flat profile dict; every key carries a nondeterministic suffix.

        ``events`` / ``edges`` (when given) turn elapsed time into the
        throughput figures the performance docs track.
        """
        wall = self.elapsed_s
        out: dict[str, float] = {
            "wall_ms": wall * 1e3,
            "peak_rss_kb": self._rss1 if self._t1 is not None else peak_rss_kb(),
            "rss_growth_kb": max(0.0, (self._rss1 or peak_rss_kb()) - self._rss0),
            "gc_pause_ms": sum(self._gc_pauses) * 1e3,
            "gc_max_pause_ms": (max(self._gc_pauses) if self._gc_pauses else 0.0)
            * 1e3,
        }
        if events is not None:
            out["events_per_s"] = events / wall if wall > 0 else 0.0
        if edges is not None:
            out["edges_per_s"] = edges / wall if wall > 0 else 0.0
        return out
